(** Least-fixpoint semantics of constructor application (paper §3.2).

    An application [Actrel{c(args)}] induces a system of equations over all
    reachable (possibly mutually recursive) constructor applications,
    iterated Jacobi style from empty relations:

    {v apply_i^0 = {},   apply_i^(k+1) = g_i (apply_1^k, ..., apply_l^k) v}

    For positive (hence monotone) systems over finite domains the limit
    exists and is reached after finitely many steps [Tars 55]. *)

open Dc_relation
open Dc_calculus

exception Divergence of string
(** Raised when a (positivity-unchecked) system oscillates with period two
    — the behaviour of the paper's "nonsense" example — or exceeds the
    round budget. *)

(** Evaluation strategy. *)
type strategy =
  | Naive  (** re-evaluate every application body from scratch each round *)
  | Seminaive
      (** differential: per round, evaluate one variant per branch and
          recursive binder occurrence with that occurrence bound to the
          previous round's delta.  Applies to definitions whose recursive
          occurrences are all top-level binder ranges with construct-free
          bases/arguments (every example in the paper); other definitions
          silently fall back to naive re-evaluation. *)

type stats = {
  mutable rounds : int;  (** fixpoint iterations until convergence *)
  mutable applications : int;  (** size [l] of the application system *)
  mutable body_evaluations : int;  (** branch-evaluation passes *)
  mutable tuples_produced : int;  (** sum of delta sizes over all rounds *)
  mutable tuples_derived : int;
      (** tuples computed including rediscoveries — the naive engine's
          waste measure *)
  mutable round_deltas : int list;
      (** new tuples per round across all applications, latest round
          first — the convergence series of experiment E1 *)
  mutable round_times : float list;
      (** wall milliseconds per round, latest round first; only populated
          when metrics are enabled ({!Dc_obs.Obs.on}) — EXPLAIN ANALYZE
          zips this with [round_deltas] *)
}

val fresh_stats : unit -> stats
val pp_stats : stats Fmt.t

val default_max_rounds : int

val apply :
  ?strategy:strategy ->
  ?max_rounds:int ->
  ?guard:Dc_guard.Guard.t ->
  ?stats:stats ->
  ?seed:Relation.t ->
  ?seed_delta:Relation.t ->
  ?domains:int ->
  Eval.env ->
  Defs.constructor_def ->
  Relation.t ->
  Eval.arg_value list ->
  Relation.t
(** [apply env def base args] computes the value of [base{def(args)}] by
    running the whole application system to its least fixpoint.  [env]
    supplies global relations plus selector/constructor lookups through its
    hooks; nested applications discovered during evaluation join the
    system.  Defaults: [Seminaive], {!default_max_rounds}.

    [guard] (default: the environment's own guard) governs the expansion:
    every round ticks its round budget and every pipeline row its row
    budget/deadline.  The expansion is {e atomic}: when the guard trips —
    or any other exception aborts the fixpoint — the shared index cache is
    rolled back to its pre-call state before the exception propagates, and
    no database state has been touched.
    @raise Dc_guard.Guard.Exhausted when the guard trips.

    [seed] starts the root application from that value instead of bottom —
    incremental maintenance under base growth ([ShTZ 84]): sound because
    the inflationary iteration of a monotone system converges to the least
    fixpoint from any point below it.  The caller guarantees the base only
    grew since the seed was computed.

    [seed_delta] additionally marks the root application as initialized, so
    the first round runs only the delta variants over the supplied delta —
    fully incremental.  The caller certifies that [seed] accounts for every
    derivation not involving [seed_delta] (see [Dc_compile.Materialize] for
    the derivation of such a pair from a base insertion).

    [domains] (default {!Dc_par.Par.domains}) > 1 hash-partitions each
    semi-naive variant's delta across that many domains; shards evaluate
    against the frozen previous-round full values and merge at the round
    barrier.  Deltas under {!Dc_par.Par.seq_cutoff} stay sequential, as
    do traced (EXPLAIN) evaluations.
    @raise Divergence on oscillation or budget exhaustion. *)

val resume :
  ?strategy:strategy ->
  ?max_rounds:int ->
  ?guard:Dc_guard.Guard.t ->
  ?stats:stats ->
  previous:Relation.t ->
  ?delta:Relation.t ->
  Eval.env ->
  Defs.constructor_def ->
  Relation.t ->
  Eval.arg_value list ->
  Relation.t
(** Continue a converged fixpoint from [previous] after the base grew —
    the delta-state reuse entry point for the maintenance subsystems.
    [delta], when known, restarts in fully incremental mode (the first
    round runs only the delta variants); without it the first round
    re-evaluates bodies against [previous], which is still sound under
    growth and usually converges immediately.  Equivalent to
    [apply ~seed:previous ?seed_delta:delta]. *)
