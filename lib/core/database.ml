(* The database programming environment: named relation variables plus the
   registries of selector and constructor definitions, with DBPL's checks
   wired in:

   - relation assignment re-validates the §2.2 key constraint;
   - assignment through a selected variable re-validates the selector
     predicate (§2.3);
   - constructor definition runs the static type checker and the §3.3
     positivity check (per dependency SCC), as the DBPL compiler's
     type-checking level does;
   - query evaluation installs the fixpoint semantics for constructor
     applications (§3.2). *)

open Dc_relation
open Dc_calculus
module Guard = Dc_guard.Guard

module SM = Map.Make (String)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* A registered view maintainer (the incremental-maintenance subsystem
   lives in a higher layer, so it plugs in through closures).  [mt_serve]
   answers a constructor application from the maintained extent (or
   declines with [None]); [mt_update] applies one batch of net base
   deltas; [mt_invalidate] marks the view stale (it will refresh on next
   serve); [mt_snapshot] captures state and returns the restore thunk
   used to make a failed maintenance step atomic. *)
type maintainer = {
  mt_name : string;
  mt_depends : string list; (* base relations the view reads *)
  mt_serve :
    Defs.constructor_def ->
    Relation.t ->
    Eval.arg_value list ->
    Relation.t option;
  mt_update : (string * Tuple.t list * Tuple.t list) list -> unit;
      (* (relation, net added, net removed) per base relation *)
  mt_invalidate : unit -> unit;
  mt_snapshot : unit -> unit -> unit;
}

type t = {
  mutable rels : Relation.t SM.t;
  mutable selectors : Defs.selector_def SM.t;
  mutable constructors : Defs.constructor_def SM.t;
  mutable strategy : Fixpoint.strategy;
  mutable check_positivity : bool;
  mutable max_rounds : int;
  mutable limits : Guard.limits;
  mutable last_stats : Fixpoint.stats option;
  mutable maintainers : maintainer list;
  mutable maintain : bool;
      (* SET MAINTAIN ON|OFF: when off, updates invalidate maintained
         views instead of propagating deltas into them *)
}

let create ?(strategy = Fixpoint.Seminaive) ?(check_positivity = true)
    ?(max_rounds = Fixpoint.default_max_rounds) ?(limits = Guard.no_limits) () =
  {
    rels = SM.empty;
    selectors = SM.empty;
    constructors = SM.empty;
    strategy;
    check_positivity;
    max_rounds;
    limits;
    last_stats = None;
    maintainers = [];
    maintain = true;
  }

let set_strategy db s = db.strategy <- s
let strategy db = db.strategy
let set_check_positivity db b = db.check_positivity <- b
let set_limits db l = db.limits <- l
let limits db = db.limits
let last_stats db = db.last_stats
let reset_last_stats db = db.last_stats <- None

(* ------------------------------------------------------------------ *)
(* Maintained views *)

let register_maintainer db m =
  (* latest registration for a name wins (re-MATERIALIZE replaces) *)
  db.maintainers <-
    m :: List.filter (fun m' -> not (String.equal m'.mt_name m.mt_name)) db.maintainers

let unregister_maintainer db name =
  db.maintainers <-
    List.filter (fun m -> not (String.equal m.mt_name name)) db.maintainers

let maintainer_names db = List.map (fun m -> m.mt_name) db.maintainers
let set_maintain db b = db.maintain <- b
let maintain db = db.maintain

(* Route one applied base-relation update to the maintainers that read it.
   With maintenance on, every relevant view either absorbs the delta or —
   if the propagation fails (guard exhaustion, injected fault) — is rolled
   back to its pre-update state via the snapshot thunks; with maintenance
   off the views are merely marked stale. *)
let notify_update db name ~added ~removed =
  if added <> [] || removed <> [] then begin
    let relevant =
      List.filter (fun m -> List.mem name m.mt_depends) db.maintainers
    in
    if relevant <> [] then
      if db.maintain then begin
        let restores = List.map (fun m -> m.mt_snapshot ()) relevant in
        try List.iter (fun m -> m.mt_update [ (name, added, removed) ]) relevant
        with e ->
          List.iter (fun restore -> restore ()) restores;
          raise e
      end
      else List.iter (fun m -> m.mt_invalidate ()) relevant
  end

let invalidate_dependents db name =
  List.iter
    (fun m -> if List.mem name m.mt_depends then m.mt_invalidate ())
    db.maintainers

(* ------------------------------------------------------------------ *)
(* Relation variables *)

let declare db name schema =
  if SM.mem name db.rels then error "relation %s already declared" name;
  db.rels <- SM.add name (Relation.empty schema) db.rels

let get db name =
  match SM.find_opt name db.rels with
  | Some r -> r
  | None -> error "unknown relation %s" name

(* Wholesale reassignment: no usable delta, so dependent maintained views
   go stale and refresh on their next serve. *)
let set db name rel =
  (match SM.find_opt name db.rels with
  | None -> db.rels <- SM.add name rel db.rels
  | Some old ->
    if not (Schema.compatible (Relation.schema old) (Relation.schema rel)) then
      error "assignment to %s: incompatible relation type" name;
    db.rels <- SM.add name rel db.rels);
  invalidate_dependents db name

let relation_names db = List.map fst (SM.bindings db.rels)

(* Point updates are transactional against maintained views: the binding
   is updated first (so maintainers read post-update base relations), the
   net delta is propagated, and if propagation fails both the binding and
   every touched view roll back to the pre-update snapshot. *)
let apply_update db name updated ~added ~removed =
  let saved = db.rels in
  db.rels <- SM.add name updated db.rels;
  try notify_update db name ~added ~removed
  with e ->
    db.rels <- saved;
    raise e

let insert db name tuple =
  let old = get db name in
  let updated = Relation.add tuple old in
  let added = if Relation.mem tuple old then [] else [ tuple ] in
  apply_update db name updated ~added ~removed:[]

let insert_all db name tuples =
  let old = get db name in
  let updated, added_rev =
    List.fold_left
      (fun (r, acc) t ->
        let acc = if Relation.mem t r then acc else t :: acc in
        (Relation.add t r, acc))
      (old, []) tuples
  in
  apply_update db name updated ~added:(List.rev added_rev) ~removed:[]

let delete db name tuple =
  let old = get db name in
  if Relation.mem tuple old then
    apply_update db name (Relation.remove tuple old) ~added:[]
      ~removed:[ tuple ]

(* ------------------------------------------------------------------ *)
(* Static environments *)

let typecheck_env db =
  Typecheck.env
    ~selectors:(List.map snd (SM.bindings db.selectors))
    ~constructors:(List.map snd (SM.bindings db.constructors))
    (List.map (fun (n, r) -> (n, Relation.schema r)) (SM.bindings db.rels))

(* Evaluation environment with the full constructor/selector semantics.
   [trace], when given, records every physical pipeline the evaluation
   lowers and runs (EXPLAIN).  [guard] defaults to a fresh guard over the
   database's declarative limits (SET LIMIT): each evaluation gets its own
   budgets.  Constructor fixpoints pick the guard up from the environment. *)
let eval_env ?trace ?guard db =
  let guard =
    match guard with
    | Some g -> g
    | None -> Guard.of_limits db.limits
  in
  let hooks =
    {
      Eval.selector_def = (fun n -> SM.find_opt n db.selectors);
      Eval.constructor_def = (fun n -> SM.find_opt n db.constructors);
      Eval.on_select = (fun env base def args -> Selector.apply env def base args);
      Eval.on_construct =
        (fun env base def args ->
          (* A maintained view that recognizes this application serves it
             without running the fixpoint (refreshing itself first if an
             unmaintained update left it stale). *)
          match
            List.find_map (fun m -> m.mt_serve def base args) db.maintainers
          with
          | Some value -> value
          | None ->
            let stats = Fixpoint.fresh_stats () in
            let value =
              Fixpoint.apply ~strategy:db.strategy ~max_rounds:db.max_rounds
                ~stats env def base args
            in
            db.last_stats <- Some stats;
            value);
    }
  in
  Eval.make_env ~hooks ?trace ~guard (SM.bindings db.rels)

(* ------------------------------------------------------------------ *)
(* Definitions *)

let define_selector db (def : Defs.selector_def) =
  (try Typecheck.check_selector_def (typecheck_env db) def
   with Typecheck.Error msg -> error "selector %s: %s" def.sel_name msg);
  db.selectors <- SM.add def.sel_name def db.selectors

(* Constructors may be mutually recursive, so groups are registered
   atomically: all signatures become visible, then every body is checked,
   then the §3.3 positivity check runs over the whole program. *)
let define_constructors db (defs : Defs.constructor_def list) =
  let saved = db.constructors in
  db.constructors <-
    List.fold_left
      (fun m (d : Defs.constructor_def) -> SM.add d.con_name d m)
      db.constructors defs;
  try
    List.iter
      (fun (d : Defs.constructor_def) ->
        try Typecheck.check_constructor_def (typecheck_env db) d
        with Typecheck.Error msg -> error "constructor %s: %s" d.con_name msg)
      defs;
    if db.check_positivity then begin
      let all = List.map snd (SM.bindings db.constructors) in
      match Positivity.check_program all with
      | Ok () -> ()
      | Error (v :: _) -> error "%a" Positivity.pp_violation v
      | Error [] -> assert false
    end
  with e ->
    db.constructors <- saved;
    raise e

let define_constructor db def = define_constructors db [ def ]

let selector db name = SM.find_opt name db.selectors
let constructor db name = SM.find_opt name db.constructors

let selector_names db = List.map fst (SM.bindings db.selectors)
let constructor_names db = List.map fst (SM.bindings db.constructors)

(* ------------------------------------------------------------------ *)
(* Queries and assignment *)

let check_query db range =
  Dc_obs.Obs.Span.timed "typecheck" (fun () ->
      Typecheck.check_query (typecheck_env db) range)

let query ?trace ?guard db range =
  check_query db range;
  Dc_obs.Obs.Span.timed "execute" (fun () ->
      Eval.eval_range (eval_env ?trace ?guard db) range)

let eval_formula db formula =
  Typecheck.check_formula (typecheck_env db) [] formula;
  Eval.eval_formula (eval_env db) formula

(* Re-impose a target schema (names, key) on a computed relation, re-running
   the key check — the relational type checker of §2.2. *)
let coerce schema rel =
  if not (Schema.compatible schema (Relation.schema rel)) then
    error "value of type %a cannot be assigned at type %a" Schema.pp
      (Relation.schema rel) Schema.pp schema;
  Relation.of_list schema (Relation.to_list rel)

(* Rel := <range expression> *)
let assign db name range =
  let target = get db name in
  let value = query db range in
  set db name (coerce (Relation.schema target) value)

(* Rel[s(args)] := <range expression>  — the §2.3 selector-guarded
   assignment: every tuple of the right-hand side must satisfy the
   selector predicate. *)
let assign_selected db name ~selector:sel_name ~args range =
  let target = get db name in
  let def =
    match selector db sel_name with
    | Some d -> d
    | None -> error "unknown selector %s" sel_name
  in
  let value = coerce (Relation.schema target) (query db range) in
  let env = eval_env db in
  let arg_values = Eval.eval_args env args in
  let checked =
    Selector.check_assignment env def ~current:target arg_values value
  in
  set db name checked
