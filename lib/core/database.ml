(* The database programming environment: named relation variables plus the
   registries of selector and constructor definitions, with DBPL's checks
   wired in:

   - relation assignment re-validates the §2.2 key constraint;
   - assignment through a selected variable re-validates the selector
     predicate (§2.3);
   - constructor definition runs the static type checker and the §3.3
     positivity check (per dependency SCC), as the DBPL compiler's
     type-checking level does;
   - query evaluation installs the fixpoint semantics for constructor
     applications (§3.2). *)

open Dc_relation
open Dc_calculus
module Guard = Dc_guard.Guard

(* Shared with Snapshot so working-set maps publish without conversion. *)
module SM = Snapshot.SM

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* A registered view maintainer (the incremental-maintenance subsystem
   lives in a higher layer, so it plugs in through closures).  [mt_serve]
   answers a constructor application from the maintained extent (or
   declines with [None]); [mt_update] applies one batch of net base
   deltas; [mt_invalidate] marks the view stale (it will refresh on next
   serve); [mt_snapshot] captures state and returns the restore thunk
   used to make a failed maintenance step atomic; [mt_stale]/[mt_freeze]
   publish the view into snapshots ([mt_freeze] returns [None] for a
   stale view — snapshot readers then fall back to the fixpoint). *)
(* Durability hooks (the WAL subsystem lives in a higher layer and plugs
   in through closures, like maintainers do).  [wh_append] runs inside
   the commit, after the mutation and maintenance succeeded but BEFORE
   the snapshot is published: it must make the commit durable (append a
   log record for a data commit, or cut a full checkpoint for a catalog
   commit) and may raise to abort — the commit then rolls back and
   nothing is published, so an acknowledged commit is always on stable
   storage.  [wh_published] runs after publication (periodic
   checkpointing); an exception there propagates to the committer but
   the commit stands. *)
type wal_hooks = {
  wh_append :
    version:int ->
    catalog:bool ->
    changes:(string * Tuple.t list * Tuple.t list) list ->
    unit;
  wh_published : version:int -> unit;
}

type maintainer = {
  mt_name : string;
  mt_depends : string list; (* base relations the view reads *)
  mt_serve :
    Defs.constructor_def ->
    Relation.t ->
    Eval.arg_value list ->
    Relation.t option;
  mt_update : (string * Tuple.t list * Tuple.t list) list -> unit;
      (* (relation, net added, net removed) per base relation *)
  mt_invalidate : unit -> unit;
  mt_snapshot : unit -> unit -> unit;
  mt_stale : unit -> bool;
  mt_freeze : unit -> Snapshot.frozen_serve option;
}

(* The database is a versioned store: [published] is the latest committed
   snapshot (immutable, shared by reference with any number of reader
   threads), while the [rels]/[selectors]/[constructors] maps are the
   single writer's private working set.  Every mutation funnels through
   {!commit}, which journals the working set, runs the mutation plus view
   maintenance, passes the one [ivm.commit] failpoint, and atomically
   publishes the successor snapshot. *)
type t = {
  mutable rels : Relation.t SM.t;
  mutable selectors : Defs.selector_def SM.t;
  mutable constructors : Defs.constructor_def SM.t;
  mutable strategy : Fixpoint.strategy;
  mutable check_positivity : bool;
  mutable max_rounds : int;
  mutable limits : Guard.limits;
  mutable last_stats : Fixpoint.stats option;
  mutable maintainers : maintainer list;
  mutable maintain : bool;
      (* SET MAINTAIN ON|OFF: when off, updates invalidate maintained
         views instead of propagating deltas into them *)
  mutable published : Snapshot.t;
  mutable prewarm_paths : (string * int list) list;
      (* declared hot access paths, rebuilt (or carried forward by
         reference) into every published snapshot's frozen index cache *)
  mutable in_commit : bool;
      (* re-entrancy guard: composite operations that call other
         committing operations join the outermost commit *)
  mutable wal : wal_hooks option;
  mutable pending_changes : (string * Tuple.t list * Tuple.t list) list;
      (* net point-update deltas accumulated by the commit in progress,
         in application order — what [wh_append] logs *)
  mutable pending_catalog : bool;
      (* the commit in progress changed the catalog / wholesale-assigned
         a relation: no replayable delta, [wh_append] must checkpoint *)
  mutable durable_lsn : int; (* 0 = nothing durable / no WAL attached *)
  mutable agg_eval :
    (t -> Defs.constructor_def -> Relation.t -> Eval.arg_value list ->
     Relation.t)
      option;
      (* evaluator for constructor systems containing aggregates: the
         fixpoint with per-group bounds lives in the compiled (datalog)
         pipeline, which this core module cannot see — the front end
         installs the bridge ([Dc_compile.Agg_eval] via [Elaborate]) *)
}

let frozen_empty_cache () = Index_cache.freeze (Index_cache.create ~cap:1 ())

let initial_snapshot ~strategy ~max_rounds ~limits =
  {
    Snapshot.version = 0;
    rels = SM.empty;
    selectors = SM.empty;
    constructors = SM.empty;
    strategy;
    max_rounds;
    limits;
    views = [];
    icache = frozen_empty_cache ();
    durable = None;
  }

let create ?(strategy = Fixpoint.Seminaive) ?(check_positivity = true)
    ?(max_rounds = Fixpoint.default_max_rounds) ?(limits = Guard.no_limits) () =
  {
    rels = SM.empty;
    selectors = SM.empty;
    constructors = SM.empty;
    strategy;
    check_positivity;
    max_rounds;
    limits;
    last_stats = None;
    maintainers = [];
    maintain = true;
    published = initial_snapshot ~strategy ~max_rounds ~limits;
    prewarm_paths = [];
    in_commit = false;
    wal = None;
    pending_changes = [];
    pending_catalog = false;
    durable_lsn = 0;
    agg_eval = None;
  }

let set_agg_eval db f = db.agg_eval <- Some f

(* ------------------------------------------------------------------ *)
(* Publication *)

(* Build and install the successor snapshot from the current working
   set.  The maps are persistent (pointer shares), each Live maintained
   view contributes a frozen serve closure over a frozen copy of its
   store, and declared prewarm paths carry their index forward by
   reference when the relation binding didn't change.  The final
   [db.published <- snap] is a single word write of an immutable record:
   reader threads always observe either the old or the new snapshot,
   never a mixture. *)
let publish db =
  let version = db.published.Snapshot.version + 1 in
  let views =
    List.map
      (fun m ->
        {
          Snapshot.fv_name = m.mt_name;
          fv_stale = m.mt_stale ();
          fv_serve = m.mt_freeze ();
        })
      db.maintainers
  in
  let icache =
    if db.prewarm_paths = [] then frozen_empty_cache ()
    else begin
      let c =
        Index_cache.create ~cap:(max 64 (List.length db.prewarm_paths)) ()
      in
      List.iter
        (fun (name, positions) ->
          match SM.find_opt name db.rels with
          | None -> ()
          | Some rel ->
            let idx =
              match
                Index_cache.frozen_get db.published.Snapshot.icache positions
                  rel
              with
              | Some idx -> idx (* binding unchanged: share by reference *)
              | None -> Index.build positions rel
            in
            Index_cache.put c positions rel idx)
        db.prewarm_paths;
      Index_cache.freeze c
    end
  in
  db.published <-
    {
      Snapshot.version;
      rels = db.rels;
      selectors = db.selectors;
      constructors = db.constructors;
      strategy = db.strategy;
      max_rounds = db.max_rounds;
      limits = db.limits;
      views;
      icache;
      durable = (if db.durable_lsn = 0 then None else Some db.durable_lsn);
    }

let snapshot db = db.published
let version db = db.published.Snapshot.version

(* ------------------------------------------------------------------ *)
(* Durability plumbing (driven by the WAL layer, Dc_wal) *)

let set_wal_hooks db hooks = db.wal <- hooks
let durable_lsn db = db.durable_lsn

let set_durable_lsn db lsn =
  db.durable_lsn <- lsn;
  (* refresh the published snapshot's watermark without a version bump:
     recovery and checkpointing adjust it outside any commit *)
  db.published <-
    {
      db.published with
      Snapshot.durable = (if lsn = 0 then None else Some lsn);
    }

(* Recovery only: rewind/forward the published version counter so a
   replayed commit republishes at exactly the version the log recorded.
   Never call this on a live (serving) database. *)
let restore_version db v =
  db.published <- { db.published with Snapshot.version = v }

(* Record the net delta of a point update for [wh_append]; kept empty
   when no WAL is attached so the non-durable path stays allocation-free. *)
let log_changes db changes =
  if db.wal <> None then db.pending_changes <- db.pending_changes @ changes

let mark_catalog db = if db.wal <> None then db.pending_catalog <- true

let prewarm db name positions =
  if
    not
      (List.exists
         (fun (n, p) -> String.equal n name && p = positions)
         db.prewarm_paths)
  then begin
    db.prewarm_paths <- (name, positions) :: db.prewarm_paths;
    publish db
  end

(* The single commit point.  Journals the working maps, snapshots every
   maintainer that reads a touched relation, runs the mutation (which
   may propagate deltas into views), passes the [ivm.commit] failpoint
   (data commits only), makes the commit durable when a WAL is attached
   ([wh_append] — append-before-publish), and publishes the successor
   snapshot.  On any exception — including a failed or fault-injected
   log append — the working set and every touched view roll back to the
   pre-commit state and nothing is published. *)
let commit ?(failpoint = false) ?(touches = []) db mutate =
  if db.in_commit then mutate ()
  else begin
    db.in_commit <- true;
    db.pending_changes <- [];
    db.pending_catalog <- false;
    let saved_rels = db.rels
    and saved_selectors = db.selectors
    and saved_constructors = db.constructors
    and saved_maintainers = db.maintainers in
    let relevant =
      List.filter
        (fun m -> List.exists (fun n -> List.mem n m.mt_depends) touches)
        db.maintainers
    in
    let restores = List.map (fun m -> m.mt_snapshot ()) relevant in
    match
      let r = mutate () in
      if failpoint && !Guard.Failpoint.armed then
        Guard.Failpoint.hit "ivm.commit";
      (match db.wal with
      | Some h ->
        h.wh_append
          ~version:(db.published.Snapshot.version + 1)
          ~catalog:db.pending_catalog ~changes:db.pending_changes
      | None -> ());
      r
    with
    | r ->
      db.pending_changes <- [];
      db.pending_catalog <- false;
      db.in_commit <- false;
      publish db;
      (match db.wal with
      | Some h -> h.wh_published ~version:db.published.Snapshot.version
      | None -> ());
      r
    | exception e ->
      db.rels <- saved_rels;
      db.selectors <- saved_selectors;
      db.constructors <- saved_constructors;
      db.maintainers <- saved_maintainers;
      List.iter (fun restore -> restore ()) restores;
      db.pending_changes <- [];
      db.pending_catalog <- false;
      db.in_commit <- false;
      raise e
  end

(* Configuration changes republish so statement snapshots taken after
   them evaluate under the new settings. *)
let set_strategy db s =
  db.strategy <- s;
  publish db

let strategy db = db.strategy
let set_check_positivity db b = db.check_positivity <- b

let set_limits db l =
  db.limits <- l;
  publish db

let limits db = db.limits
let last_stats db = db.last_stats
let reset_last_stats db = db.last_stats <- None

(* ------------------------------------------------------------------ *)
(* Maintained views *)

(* (Un)registration changes what future snapshots serve and, under a
   WAL, what recovery must rebuild — so both ride through {!commit} like
   any DDL: the maintainer list is journaled, and the durable layer cuts
   a checkpoint capturing the registry's new shape. *)
let register_maintainer db m =
  commit db (fun () ->
      (* latest registration for a name wins (re-MATERIALIZE replaces) *)
      db.maintainers <-
        m
        :: List.filter
             (fun m' -> not (String.equal m'.mt_name m.mt_name))
             db.maintainers;
      mark_catalog db)

let unregister_maintainer db name =
  commit db (fun () ->
      db.maintainers <-
        List.filter (fun m -> not (String.equal m.mt_name name)) db.maintainers;
      mark_catalog db)

let maintainer_names db = List.map (fun m -> m.mt_name) db.maintainers

let set_maintain db b =
  db.maintain <- b;
  publish db

let maintain db = db.maintain

(* Route one applied base-relation update to the maintainers that read
   it: with maintenance on every relevant view absorbs the delta, with
   maintenance off the views are merely marked stale.  Rollback on
   failure is {!commit}'s job — it snapshotted every view a touched
   relation can reach before the mutation started. *)
let notify_update db name ~added ~removed =
  if added <> [] || removed <> [] then begin
    let relevant =
      List.filter (fun m -> List.mem name m.mt_depends) db.maintainers
    in
    if relevant <> [] then
      if db.maintain then
        List.iter (fun m -> m.mt_update [ (name, added, removed) ]) relevant
      else List.iter (fun m -> m.mt_invalidate ()) relevant
  end

let invalidate_dependents db name =
  List.iter
    (fun m -> if List.mem name m.mt_depends then m.mt_invalidate ())
    db.maintainers

(* ------------------------------------------------------------------ *)
(* Relation variables *)

let declare db name schema =
  if SM.mem name db.rels then error "relation %s already declared" name;
  commit db (fun () ->
      db.rels <- SM.add name (Relation.empty schema) db.rels;
      mark_catalog db)

let get db name =
  match SM.find_opt name db.rels with
  | Some r -> r
  | None -> error "unknown relation %s" name

(* Wholesale reassignment: no usable delta, so dependent maintained views
   go stale and refresh on their next serve.  Like every data mutation
   this is one journaled commit — an injected [ivm.commit] fault rolls
   both the binding and the staleness marks back. *)
let set db name rel =
  commit db ~failpoint:true ~touches:[ name ] (fun () ->
      (match SM.find_opt name db.rels with
      | None -> db.rels <- SM.add name rel db.rels
      | Some old ->
        if
          not (Schema.compatible (Relation.schema old) (Relation.schema rel))
        then error "assignment to %s: incompatible relation type" name;
        db.rels <- SM.add name rel db.rels);
      invalidate_dependents db name;
      (* wholesale assignment has no replayable point delta; the durable
         layer checkpoints instead of logging *)
      mark_catalog db)

let relation_names db = List.map fst (SM.bindings db.rels)

(* Point updates are transactional against maintained views: the binding
   is updated first (so maintainers read post-update base relations) and
   the net delta is propagated, all inside one {!commit} — a failed
   propagation rolls both the binding and every touched view back to the
   pre-update snapshot, and nothing is published. *)
let apply_update db name updated ~added ~removed =
  commit db ~failpoint:true ~touches:[ name ] (fun () ->
      db.rels <- SM.add name updated db.rels;
      log_changes db [ (name, added, removed) ];
      notify_update db name ~added ~removed)

let insert db name tuple =
  let old = get db name in
  let updated = Relation.add tuple old in
  let added = if Relation.mem tuple old then [] else [ tuple ] in
  apply_update db name updated ~added ~removed:[]

let insert_all db name tuples =
  let old = get db name in
  let updated, added_rev =
    List.fold_left
      (fun (r, acc) t ->
        let acc = if Relation.mem t r then acc else t :: acc in
        (Relation.add t r, acc))
      (old, []) tuples
  in
  apply_update db name updated ~added:(List.rev added_rev) ~removed:[]

let delete db name tuple =
  let old = get db name in
  if Relation.mem tuple old then
    apply_update db name (Relation.remove tuple old) ~added:[]
      ~removed:[ tuple ]

(* Apply a multi-relation batch of point updates as ONE commit: a single
   version is published covering the whole batch, maintainers see the
   batch in one [mt_update] call, and a mid-batch failure rolls the
   entire batch back.  This is the writer thread's unit of work. *)
let update_batch db changes =
  let touches = List.map (fun (n, _, _) -> n) changes in
  commit db ~failpoint:true ~touches (fun () ->
      let applied =
        List.map
          (fun (name, adds, rems) ->
            let old = get db name in
            let after_rem, removed_rev =
              List.fold_left
                (fun (r, acc) t ->
                  if Relation.mem t r then (Relation.remove t r, t :: acc)
                  else (r, acc))
                (old, []) rems
            in
            let updated, added_rev =
              List.fold_left
                (fun (r, acc) t ->
                  if Relation.mem t r then (r, acc)
                  else (Relation.add t r, t :: acc))
                (after_rem, []) adds
            in
            db.rels <- SM.add name updated db.rels;
            (name, List.rev added_rev, List.rev removed_rev))
          changes
      in
      log_changes db applied;
      let real = List.filter (fun (_, a, r) -> a <> [] || r <> []) applied in
      if real <> [] then
        if db.maintain then
          List.iter
            (fun m ->
              let mine =
                List.filter (fun (n, _, _) -> List.mem n m.mt_depends) real
              in
              if mine <> [] then m.mt_update mine)
            db.maintainers
        else List.iter (fun (n, _, _) -> invalidate_dependents db n) real)

(* ------------------------------------------------------------------ *)
(* Static environments *)

let typecheck_env db =
  Typecheck.env
    ~selectors:(List.map snd (SM.bindings db.selectors))
    ~constructors:(List.map snd (SM.bindings db.constructors))
    (List.map (fun (n, r) -> (n, Relation.schema r)) (SM.bindings db.rels))

(* Does the constructor system reachable from [def] contain an aggregated
   definition?  Such applications must run through the compiled datalog
   pipeline (grouped accumulators, per-group-bound semi-naive rounds) —
   the naive branch-at-a-time fixpoint would re-emit displaced bounds. *)
let system_has_agg db (def : Defs.constructor_def) =
  let seen = Hashtbl.create 8 in
  let rec walk (d : Defs.constructor_def) =
    if Hashtbl.mem seen d.con_name then false
    else begin
      Hashtbl.replace seen d.con_name ();
      d.con_agg <> None
      || List.exists
           (fun c ->
             match SM.find_opt c db.constructors with
             | Some dc -> walk dc
             | None -> false)
           (Positivity.dependencies d)
    end
  in
  walk def

(* Evaluation environment with the full constructor/selector semantics.
   [trace], when given, records every physical pipeline the evaluation
   lowers and runs (EXPLAIN).  [guard] defaults to a fresh guard over the
   database's declarative limits (SET LIMIT): each evaluation gets its own
   budgets.  Constructor fixpoints pick the guard up from the environment. *)
let eval_env ?trace ?guard db =
  let guard =
    match guard with
    | Some g -> g
    | None -> Guard.of_limits db.limits
  in
  let hooks =
    {
      Eval.selector_def = (fun n -> SM.find_opt n db.selectors);
      Eval.constructor_def = (fun n -> SM.find_opt n db.constructors);
      Eval.on_select = (fun env base def args -> Selector.apply env def base args);
      Eval.on_construct =
        (fun env base def args ->
          (* A maintained view that recognizes this application serves it
             without running the fixpoint (refreshing itself first if an
             unmaintained update left it stale). *)
          match
            List.find_map (fun m -> m.mt_serve def base args) db.maintainers
          with
          | Some value -> value
          | None ->
            if system_has_agg db def then (
              match db.agg_eval with
              | Some f -> f db def base args
              | None ->
                error
                  "constructor %s: aggregated constructor systems need \
                   the compiled front end (no aggregate evaluator is \
                   installed on this database)"
                  def.con_name)
            else begin
              let stats = Fixpoint.fresh_stats () in
              let value =
                Fixpoint.apply ~strategy:db.strategy
                  ~max_rounds:db.max_rounds ~stats env def base args
              in
              db.last_stats <- Some stats;
              value
            end);
    }
  in
  Eval.make_env ~hooks ?trace ~guard (SM.bindings db.rels)

(* ------------------------------------------------------------------ *)
(* Definitions *)

let define_selector db (def : Defs.selector_def) =
  (try Typecheck.check_selector_def (typecheck_env db) def
   with Typecheck.Error msg -> error "selector %s: %s" def.sel_name msg);
  commit db (fun () ->
      db.selectors <- SM.add def.sel_name def db.selectors;
      mark_catalog db)

(* Constructors may be mutually recursive, so groups are registered
   atomically: all signatures become visible, then every body is checked,
   then the §3.3 positivity check runs over the whole program.  The
   group rides on {!commit}'s catalog journal: on failure nothing is
   registered and nothing is published. *)
let define_constructors db (defs : Defs.constructor_def list) =
  commit db (fun () ->
      db.constructors <-
        List.fold_left
          (fun m (d : Defs.constructor_def) -> SM.add d.con_name d m)
          db.constructors defs;
      List.iter
        (fun (d : Defs.constructor_def) ->
          try Typecheck.check_constructor_def (typecheck_env db) d
          with Typecheck.Error msg ->
            error "constructor %s: %s" d.con_name msg)
        defs;
      if db.check_positivity then begin
        let all = List.map snd (SM.bindings db.constructors) in
        (match Positivity.check_program all with
        | Ok () -> ()
        | Error (v :: _) -> error "%a" Positivity.pp_violation v
        | Error [] -> assert false);
        (* aggregate admission: COUNT/SUM must sit outside recursion,
           recursive MIN/MAX must be premappable — the typed
           [Dc_agg.Agg.Inadmissible] propagates to the caller *)
        Positivity.check_aggregates all
      end;
      mark_catalog db)

let define_constructor db def = define_constructors db [ def ]

let selector db name = SM.find_opt name db.selectors
let constructor db name = SM.find_opt name db.constructors

let selector_names db = List.map fst (SM.bindings db.selectors)
let constructor_names db = List.map fst (SM.bindings db.constructors)

(* ------------------------------------------------------------------ *)
(* Queries and assignment *)

let check_query db range =
  Dc_obs.Obs.Span.timed "typecheck" (fun () ->
      Typecheck.check_query (typecheck_env db) range)

let query ?trace ?guard db range =
  check_query db range;
  Dc_obs.Obs.Span.timed "execute" (fun () ->
      Eval.eval_range (eval_env ?trace ?guard db) range)

let eval_formula db formula =
  Typecheck.check_formula (typecheck_env db) [] formula;
  Eval.eval_formula (eval_env db) formula

(* Re-impose a target schema (names, key) on a computed relation, re-running
   the key check — the relational type checker of §2.2. *)
let coerce schema rel =
  if not (Schema.compatible schema (Relation.schema rel)) then
    error "value of type %a cannot be assigned at type %a" Schema.pp
      (Relation.schema rel) Schema.pp schema;
  Relation.of_list schema (Relation.to_list rel)

(* Rel := <range expression> *)
let assign db name range =
  let target = get db name in
  let value = query db range in
  set db name (coerce (Relation.schema target) value)

(* Rel[s(args)] := <range expression>  — the §2.3 selector-guarded
   assignment: every tuple of the right-hand side must satisfy the
   selector predicate. *)
let assign_selected db name ~selector:sel_name ~args range =
  let target = get db name in
  let def =
    match selector db sel_name with
    | Some d -> d
    | None -> error "unknown selector %s" sel_name
  in
  let value = coerce (Relation.schema target) (query db range) in
  let env = eval_env db in
  let arg_values = Eval.eval_args env args in
  let checked =
    Selector.check_assignment env def ~current:target arg_values value
  in
  set db name checked
