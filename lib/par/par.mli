(** Reusable domain pool and sharded map/reduce for parallel fixpoint
    rounds.

    The pool is process-global, lazily spawned, and reused across
    evaluations: the first parallel round pays the [Domain.spawn] cost,
    subsequent rounds only pay a condition-variable wakeup.  Worker
    domains block on a job queue; [map] submits shards 1..P-1 to the
    queue and runs shard 0 inline on the calling domain, so a
    single-shard call never touches the pool at all.

    Calls from a worker domain (or any non-main domain) degrade to
    sequential inline execution — nesting cannot deadlock the pool. *)

(** {1 Configuration} *)

val domains : unit -> int
(** Current parallelism degree [P >= 1].  Initialized from the
    [DC_DOMAINS] environment variable when set to a positive integer,
    otherwise [max 1 (Domain.recommended_domain_count () - 1)].  [1]
    means fully sequential evaluation. *)

val set_domains : int -> unit
(** Set the parallelism degree (clamped to [>= 1]).  Backs the surface
    [SET PARALLEL n;] statement and [dbpl --domains]. *)

val reset_domains : unit -> unit
(** Restore the environment-derived default degree ([SET PARALLEL
    DEFAULT;]). *)

val with_domains : int -> (unit -> 'a) -> 'a
(** [with_domains p f] runs [f] with the degree scoped to [p],
    restoring the previous value on exit (including on exceptions). *)

val seq_cutoff : unit -> int
(** Minimum work-set cardinality (delta tuples) below which callers
    should stay sequential: sharding a handful of tuples costs more in
    partition/merge than it saves.  Default [64]. *)

val set_seq_cutoff : int -> unit

val with_seq_cutoff : int -> (unit -> 'a) -> 'a
(** Scoped override of {!seq_cutoff}; the oracle uses [with_seq_cutoff 1]
    to force the parallel code path onto tiny generated workloads. *)

(** {1 Sharded execution} *)

val map :
  ?on_first_error:(exn -> unit) ->
  ?prefer:(exn -> bool) ->
  shards:int ->
  (int -> 'a) ->
  'a array
(** [map ~shards f] evaluates [f 0 .. f (shards-1)] — shard 0 on the
    calling domain, the rest on pool workers — and returns the results
    in shard order.  The call is a barrier: it returns only after every
    shard has finished (even when some raised).

    Exceptions: each shard's exception is captured; after the barrier
    the call re-raises the exception of the lowest-numbered shard whose
    exception satisfies [prefer] (default: all), falling back to the
    lowest-numbered exception outright.  [on_first_error] is invoked at
    most once, as soon as the first shard fails and while the others
    are still running — engines use it to [Guard.cancel] the shared
    guard so sibling shards trip out quickly. *)

val run : (unit -> 'a) -> 'a
(** [run f] executes [f] on a pool worker domain and blocks the calling
    thread until it finishes (exceptions re-raised with their original
    backtrace).  This is task submission, not a sharded barrier: any
    number of threads can [run] closures concurrently and they execute
    in parallel on distinct workers — the serving layer uses it to take
    read-statement evaluation off the main domain, where systhreads
    interleave, onto truly parallel domains over frozen snapshots.

    Degrades to calling [f] inline when the degree is 1 (no workers
    configured) or when called from a non-main domain (a worker must
    never block on its own pool). *)

val map_reduce :
  ?on_first_error:(exn -> unit) ->
  ?prefer:(exn -> bool) ->
  shards:int ->
  map:(int -> 'b) ->
  reduce:('a -> 'b -> 'a) ->
  init:'a ->
  unit ->
  'a
(** [map_reduce ~shards ~map ~reduce ~init ()] is
    [Array.fold_left reduce init (Par.map ~shards map)]: the reduce
    runs on the calling domain in ascending shard order, so the fold is
    deterministic for a fixed [shards]. *)

(** {1 Observability} *)

val observe_round : shard_sizes:int array -> merge_ms:float -> unit
(** Record one parallel round into the [dc_par_*] instruments: one
    {e dc_par_rounds} tick, each shard's size into
    {e dc_par_shard_rows}, the barrier merge time into
    {e dc_par_merge_ms}, and the imbalance ratio (largest shard over
    mean shard) into {e dc_par_imbalance}. *)

(** {1 Pool introspection (tests)} *)

val pool_size : unit -> int
(** Number of worker domains currently spawned (main excluded). *)

val shutdown : unit -> unit
(** Join and discard all pool workers.  Registered [at_exit]; safe to
    call repeatedly, and the pool respawns lazily if used again. *)
