(* Process-global domain pool + sharded map (runtime kernel).

   One pool for the whole process: worker domains are spawned lazily the
   first time a [map] needs them and then parked on a condition variable
   between rounds, so the per-round cost of parallelism is a wakeup, not
   a spawn.  Shard 0 always runs inline on the submitting domain — with
   P configured domains we spawn P-1 workers and keep the caller busy.

   Exception protocol: a failing shard never tears the barrier down
   early (sibling shards own shared mutable state such as per-shard
   index caches that must quiesce before the caller unwinds).  Each
   shard's exception is parked in a slot; [on_first_error] fires once so
   the caller can cancel a shared guard and drain the stragglers fast;
   after the barrier the lowest-numbered preferred exception is
   re-raised with its original backtrace. *)

(* ------------------------------------------------------------------ *)
(* Configuration *)

let clamp_domains n = if n < 1 then 1 else if n > 64 then 64 else n

let default_domains () =
  match Sys.getenv_opt "DC_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> clamp_domains n
    | _ -> max 1 (Domain.recommended_domain_count () - 1))
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let domains_ref = ref (default_domains ())
let domains () = !domains_ref
let set_domains n = domains_ref := clamp_domains n
let reset_domains () = domains_ref := default_domains ()

let with_domains p f =
  let saved = !domains_ref in
  set_domains p;
  Fun.protect ~finally:(fun () -> domains_ref := saved) f

let seq_cutoff_ref = ref 64
let seq_cutoff () = !seq_cutoff_ref
let set_seq_cutoff n = seq_cutoff_ref := max 0 n

let with_seq_cutoff n f =
  let saved = !seq_cutoff_ref in
  set_seq_cutoff n;
  Fun.protect ~finally:(fun () -> seq_cutoff_ref := saved) f

(* ------------------------------------------------------------------ *)
(* The pool *)

type pool = {
  m : Mutex.t;
  cv : Condition.t; (* signalled when jobs arrive or quit flips *)
  jobs : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable quit : bool;
}

let pool =
  { m = Mutex.create (); cv = Condition.create (); jobs = Queue.create ();
    workers = []; quit = false }

let worker_loop () =
  let rec next () =
    Mutex.lock pool.m;
    let rec wait () =
      if pool.quit then begin
        Mutex.unlock pool.m;
        None
      end
      else
        match Queue.take_opt pool.jobs with
        | Some job ->
          Mutex.unlock pool.m;
          Some job
        | None ->
          Condition.wait pool.cv pool.m;
          wait ()
    in
    match wait () with
    | None -> ()
    | Some job ->
      (* Jobs wrap their own exception handling; a raise here would be a
         pool bug, not a shard failure.  Never let it kill the worker. *)
      (try job () with _ -> ());
      next ()
  in
  next ()

let pool_size () =
  Mutex.lock pool.m;
  let n = List.length pool.workers in
  Mutex.unlock pool.m;
  n

(* Grow the pool to [n] workers.  Called with [pool.m] held. *)
let ensure_workers_locked n =
  while List.length pool.workers < n do
    pool.workers <- Domain.spawn worker_loop :: pool.workers
  done

let shutdown () =
  Mutex.lock pool.m;
  let ws = pool.workers in
  pool.workers <- [];
  pool.quit <- true;
  Condition.broadcast pool.cv;
  Mutex.unlock pool.m;
  List.iter Domain.join ws;
  Mutex.lock pool.m;
  pool.quit <- false;
  Mutex.unlock pool.m

let () = at_exit shutdown

(* ------------------------------------------------------------------ *)
(* Sharded map *)

let run_seq ~shards f = Array.init shards f

let map ?(on_first_error = fun (_ : exn) -> ()) ?(prefer = fun (_ : exn) -> true)
    ~shards f =
  if shards <= 1 then [| f 0 |]
  else if not (Domain.is_main_domain ()) then
    (* Nested call from a worker: run inline — queueing would deadlock a
       single-worker pool, and the outer map already owns the domains. *)
    run_seq ~shards f
  else begin
    let results = Array.make shards None in
    let errors = Array.make shards None in
    let first_error = Atomic.make false in
    let remaining = ref (shards - 1) in
    let done_m = Mutex.create () in
    let done_cv = Condition.create () in
    let run i =
      match f i with
      | v -> results.(i) <- Some v
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        errors.(i) <- Some (e, bt);
        if not (Atomic.exchange first_error true) then (
          try on_first_error e with _ -> ())
    in
    let job i () =
      run i;
      Mutex.lock done_m;
      decr remaining;
      if !remaining = 0 then Condition.signal done_cv;
      Mutex.unlock done_m
    in
    Mutex.lock pool.m;
    ensure_workers_locked (shards - 1);
    for i = 1 to shards - 1 do
      Queue.add (job i) pool.jobs
    done;
    Condition.broadcast pool.cv;
    Mutex.unlock pool.m;
    run 0;
    Mutex.lock done_m;
    while !remaining > 0 do
      Condition.wait done_cv done_m
    done;
    Mutex.unlock done_m;
    (* The done_m handshake orders every worker's slot writes before the
       reads below. *)
    let reraise (e, bt) = Printexc.raise_with_backtrace e bt in
    let preferred = ref None
    and fallback = ref None in
    Array.iter
      (function
        | Some ((e, _) as slot) ->
          if !fallback = None then fallback := Some slot;
          if !preferred = None && prefer e then preferred := Some slot
        | None -> ())
      errors;
    (match (!preferred, !fallback) with
    | Some slot, _ | None, Some slot -> reraise slot
    | None, None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* no error ⇒ every slot was filled *))
      results
  end

(* ------------------------------------------------------------------ *)
(* Task submission *)

(* One closure on one worker, caller blocks.  Unlike [map] the caller
   does no inline work — the whole point is to move [f] onto a worker
   domain so that concurrent [run]s from different systhreads execute
   truly in parallel instead of interleaving on the main domain's
   runtime lock.  With degree P we keep P-1 workers, matching [map]'s
   sizing; degree 1 (or a call from a worker domain, which must never
   block on its own pool) degrades to calling [f] inline. *)
let run f =
  let p = domains () in
  if p <= 1 || not (Domain.is_main_domain ()) then f ()
  else begin
    let m = Mutex.create () in
    let cv = Condition.create () in
    let slot = ref None in
    let job () =
      let r =
        match f () with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock m;
      slot := Some r;
      Condition.signal cv;
      Mutex.unlock m
    in
    Mutex.lock pool.m;
    ensure_workers_locked (p - 1);
    Queue.add job pool.jobs;
    Condition.broadcast pool.cv;
    Mutex.unlock pool.m;
    Mutex.lock m;
    while Option.is_none !slot do
      Condition.wait cv m
    done;
    Mutex.unlock m;
    match !slot with
    | Some (Ok v) -> v
    | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
    | None -> assert false
  end

let map_reduce ?on_first_error ?prefer ~shards ~map:f ~reduce ~init () =
  Array.fold_left reduce init (map ?on_first_error ?prefer ~shards f)

(* ------------------------------------------------------------------ *)
(* Observability *)

module Obs = Dc_obs.Obs

let m_rounds = lazy (Obs.Counter.make "dc_par_rounds_total")
let m_shard_rows = lazy (Obs.Histogram.make "dc_par_shard_rows")
let m_merge_ms = lazy (Obs.Histogram.make "dc_par_merge_ms")
let m_imbalance = lazy (Obs.Histogram.make "dc_par_imbalance")

let observe_round ~shard_sizes ~merge_ms =
  Obs.Counter.inc (Lazy.force m_rounds);
  let n = Array.length shard_sizes in
  if n > 0 then begin
    let total = Array.fold_left ( + ) 0 shard_sizes in
    let biggest = Array.fold_left max 0 shard_sizes in
    Array.iter
      (fun s -> Obs.Histogram.observe (Lazy.force m_shard_rows) (float_of_int s))
      shard_sizes;
    if total > 0 then
      Obs.Histogram.observe (Lazy.force m_imbalance)
        (float_of_int (biggest * n) /. float_of_int total)
  end;
  Obs.Histogram.observe (Lazy.force m_merge_ms) merge_ms
