(* Bill-of-materials workloads: a parts-explosion hierarchy, the classic
   recursive database example the paper's CAD framing motivates.

   [Contains] is a ternary relation (assembly, component, qty); the
   generated hierarchy is a DAG: each part of level l uses parts of level
   l+1 (shared subassemblies make it a DAG, not a tree). *)

open Dc_relation
open Dc_calculus

let part i = Value.str (Fmt.str "p%d" i)

let contains_schema =
  Schema.make
    [ ("assembly", Value.TStr); ("component", Value.TStr); ("qty", Value.TInt) ]

(* [levels] levels with [width] parts each; every part uses [uses] random
   parts of the next level with quantity 1..4. *)
let hierarchy ~seed ~levels ~width ~uses =
  let rng = Rng.create seed in
  let tuples = ref [] in
  for l = 0 to levels - 2 do
    for a = 0 to width - 1 do
      let assembly = part ((l * width) + a) in
      let chosen = Hashtbl.create 8 in
      let made = ref 0 in
      while !made < uses do
        let c = Rng.int rng width in
        if not (Hashtbl.mem chosen c) then begin
          Hashtbl.replace chosen c ();
          incr made;
          let component = part (((l + 1) * width) + c) in
          let qty = Value.Int (1 + Rng.int rng 4) in
          tuples := Tuple.of_list [ assembly; component; qty ] :: !tuples
        end
      done
    done
  done;
  Relation.of_list contains_schema !tuples

(* The parts-explosion constructor: all (assembly, component, quantity)
   triples reachable through the Contains hierarchy, quantities multiplied
   along the path:

     CONSTRUCTOR explode FOR Rel: containsrel (): containsrel;
     BEGIN EACH r IN Rel: TRUE,
           <d.assembly, u.component, d.qty * u.qty> OF
             EACH d IN Rel, EACH u IN Rel{explode}:
               d.component = u.assembly
     END explode *)
let explode_constructor () : Defs.constructor_def =
  {
    con_name = "explode";
    con_formal = "Rel";
    con_formal_schema = contains_schema;
    con_params = [];
    con_result = contains_schema;
    con_agg = None;
    con_body =
      Ast.
        [
          identity_branch (Rel "Rel");
          branch
            [ ("d", Rel "Rel"); ("u", Construct (Rel "Rel", "explode", [])) ]
            ~target:
              [
                field "d" "assembly";
                field "u" "component";
                Binop (Mul, field "d" "qty", field "u" "qty");
              ]
            ~where:(eq (field "d" "component") (field "u" "assembly"));
        ];
  }
