(** Synthetic graph workloads for the recursive-query experiments: binary
    relations over string node names ("n0", "n1", ...) with schema
    (src, dst), deterministic given the parameters/seed. *)

open Dc_relation

val node : int -> Value.t
val node_name : int -> string

val edge_schema : Schema.t

val of_pairs : (int * int) list -> Relation.t

val chain : int -> Relation.t
(** n0 → n1 → … → n(n): diameter [n] — worst case for naive iteration. *)

val cycle : int -> Relation.t
(** Strongly connected: SLD resolution diverges on it (experiment E2). *)

val binary_tree : int -> Relation.t
(** Complete binary tree of the given depth (edges parent → child). *)

val random_graph : seed:int -> nodes:int -> edges:int -> Relation.t
(** G(n, m): distinct uniform directed edges, no self loops. *)

val weighted_edge_schema : Schema.t
(** (src: STRING, dst: STRING, w: INTEGER), keyed on (src, dst). *)

val random_weighted_graph :
  seed:int -> nodes:int -> edges:int -> max_w:int -> Relation.t
(** [random_graph] with a uniform integer weight in 1..[max_w] per edge —
    the shortest-path aggregate workloads.  Distinct (src, dst) pairs;
    strictly positive weights, so recursive MIN terminates on cycles. *)

val layered : layers:int -> width:int -> Relation.t
(** Complete bipartite between adjacent layers — exponential path
    multiplicity, the duplicated-subproof regime of experiment E2. *)

val two_chains : int -> Relation.t
(** Two disjoint chains of length [n] — selectivity of pushed restrictions
    (experiment E4). *)

val scene : depth:int -> stack:int -> Relation.t * Relation.t
(** CAD scene for the mutually recursive ahead/above experiments: a row of
    [depth] objects each in front of the next, a stack of [stack] objects
    on every second one.  Returns (Infront, Ontop). *)

val same_generation_tree : int -> Relation.t * Relation.t * Relation.t
(** Balanced binary tree of the given depth: (Up, Flat, Down) for the
    same-generation constructor. *)
