(* Synthetic graph workloads for the recursive-query experiments.

   All generators produce binary relations over string node names
   ("n0", "n1", ...) with schema (src, dst); seeds make them reproducible.
   The shapes match the regimes the experiments need:
   - [chain]: diameter n, one new pair per fixpoint round — worst case for
     naive iteration, linear for semi-naive;
   - [cycle]: strongly connected — SLD resolution diverges (E2);
   - [binary_tree]: logarithmic diameter, fan-out joins;
   - [random_graph]: G(n, m) uniform sparse graphs;
   - [layered]: DAG of w nodes per layer, complete bipartite between
     adjacent layers — exponential path multiplicity, the duplicated
     subproof regime for proof-oriented evaluation (E2);
   - [two_chains]: disconnected components — selectivity of pushed
     restrictions (E4). *)

open Dc_relation
open Dc_core

let node i = Value.str (Fmt.str "n%d" i)

let node_name i = Fmt.str "n%d" i

let edge_schema = Constructor.binary_schema Value.TStr

let of_pairs pairs =
  Relation.of_list edge_schema
    (List.map (fun (a, b) -> Tuple.make2 (node a) (node b)) pairs)

let chain n = of_pairs (List.init n (fun i -> (i, i + 1)))

let cycle n = of_pairs (List.init n (fun i -> (i, (i + 1) mod n)))

let binary_tree depth =
  let rec edges i acc =
    if i >= (1 lsl depth) - 1 then acc
    else edges (i + 1) (((i, (2 * i) + 1) :: ((i, (2 * i) + 2) :: acc)))
  in
  of_pairs (edges 0 [])

let weighted_edge_schema =
  Schema.make ~key:[ "src"; "dst" ]
    [ ("src", Value.TStr); ("dst", Value.TStr); ("w", Value.TInt) ]

(* G(n, m) with integer weights 1..max_w — distinct (src, dst) pairs, so
   the pair is a valid key; the aggregate experiments (shortest paths)
   group on it.  Positive weights keep recursive MIN terminating on the
   cycles these graphs contain. *)
let random_weighted_graph ~seed ~nodes ~edges ~max_w =
  let rng = Rng.create seed in
  let seen = Hashtbl.create (2 * edges) in
  let rec draw acc k guard =
    if k = 0 || guard = 0 then acc
    else
      let a = Rng.int rng nodes and b = Rng.int rng nodes in
      if a = b || Hashtbl.mem seen (a, b) then draw acc k (guard - 1)
      else begin
        Hashtbl.replace seen (a, b) ();
        draw ((a, b, 1 + Rng.int rng max_w) :: acc) (k - 1) (guard - 1)
      end
  in
  Relation.of_list weighted_edge_schema
    (List.map
       (fun (a, b, w) -> Tuple.of_list [ node a; node b; Value.Int w ])
       (draw [] edges (100 * edges)))

(* G(n, m): m distinct directed edges drawn uniformly (no self loops). *)
let random_graph ~seed ~nodes ~edges =
  let rng = Rng.create seed in
  let seen = Hashtbl.create (2 * edges) in
  let rec draw acc k guard =
    if k = 0 || guard = 0 then acc
    else
      let a = Rng.int rng nodes and b = Rng.int rng nodes in
      if a = b || Hashtbl.mem seen (a, b) then draw acc k (guard - 1)
      else begin
        Hashtbl.replace seen (a, b) ();
        draw ((a, b) :: acc) (k - 1) (guard - 1)
      end
  in
  of_pairs (draw [] edges (100 * edges))

(* [layers] layers of [width] nodes; every node of layer i points to every
   node of layer i+1.  Node ids: layer * width + slot. *)
let layered ~layers ~width =
  let pairs = ref [] in
  for l = 0 to layers - 2 do
    for a = 0 to width - 1 do
      for b = 0 to width - 1 do
        pairs := ((l * width) + a, ((l + 1) * width) + b) :: !pairs
      done
    done
  done;
  of_pairs !pairs

(* Two disjoint chains of length n; the second one's nodes are offset. *)
let two_chains n =
  of_pairs
    (List.init n (fun i -> (i, i + 1))
    @ List.init n (fun i -> (100000 + i, 100000 + i + 1)))

(* ------------------------------------------------------------------ *)
(* Scenes for the mutually recursive ahead/above experiments: a row of
   [depth] objects each in front of the next, with a stack of [stack]
   objects on top of every second object. *)

let scene ~depth ~stack =
  let infront =
    Relation.of_list
      (Constructor.infront_schema Value.TStr)
      (List.init depth (fun i ->
           Tuple.make2 (node i) (node (i + 1))))
  in
  let ontop_pairs = ref [] in
  for i = 0 to depth - 1 do
    if i mod 2 = 0 then
      for s = 0 to stack - 1 do
        let item k = Value.str (Fmt.str "s%d_%d" i k) in
        let below = if s = 0 then node i else item (s - 1) in
        ontop_pairs := Tuple.make2 (item s) below :: !ontop_pairs
      done
  done;
  let ontop =
    Relation.of_list (Constructor.ontop_schema Value.TStr) !ontop_pairs
  in
  (infront, ontop)

(* ------------------------------------------------------------------ *)
(* Same-generation workloads: a balanced tree of [depth] as Up edges (child
   -> parent), Down its inverse, Flat the sibling relation at the root. *)

let same_generation_tree depth =
  let up = ref [] and down = ref [] in
  let rec build i d =
    if d < depth then begin
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      up := (l, i) :: (r, i) :: !up;
      down := (i, l) :: (i, r) :: !down;
      build l (d + 1);
      build r (d + 1)
    end
  in
  build 0 0;
  (of_pairs !up, of_pairs [ (1, 2) ], of_pairs !down)
