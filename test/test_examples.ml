(* Golden tests over the shipped example programs (examples/*.dbpl).

   Each positive example runs through the full front end
   ([Elaborate.run_string], the same path `dbpl run` takes) and its
   output is compared byte for byte against a checked-in .expected
   transcript — so surface syntax, admission, evaluation, and the
   printer all have to agree with what the documentation shows.  The
   aggregate examples (PR 10) cover the admissible shapes: recursive
   MIN with per-group bounds, recursion-below-SUM stratification, an
   aggregate stratum feeding positive recursion, and stratified COUNT
   with a discriminator column.

   nonmonotone.dbpl is the negative example: it must be REJECTED at
   declaration with the positivity error the file's header documents. *)

module Database = Dc_core.Database

let find base =
  let candidates =
    [
      Filename.concat "../examples" base;
      Filename.concat "examples" base;
      Filename.concat "../../examples" base;
      Filename.concat "../../../examples" base;
      Filename.concat "/root/repo/examples" base;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "%s not found" base

let find_expected base =
  let candidates =
    [ base; Filename.concat "test" base; Filename.concat "../test" base ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "%s not found" base

let read path = In_channel.with_open_text path In_channel.input_all

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let golden example () =
  let src = read (find (example ^ ".dbpl")) in
  let expected = read (find_expected ("example_" ^ example ^ ".expected")) in
  let _, out = Dc_lang.Elaborate.run_string src in
  Alcotest.(check string) (example ^ ".dbpl transcript") expected out

let test_nonmonotone_rejected () =
  let src = read (find "nonmonotone.dbpl") in
  match Dc_lang.Elaborate.run_string src with
  | _ -> Alcotest.fail "nonmonotone.dbpl was admitted"
  | exception Database.Error msg ->
    Alcotest.(check bool)
      "positivity error names the odd NOT depth" true
      (contains msg "NOT/ALL" && contains msg "nonsense")

let () =
  Alcotest.run "dc_examples"
    [
      ( "golden",
        [
          Alcotest.test_case "shortest_path (recursive MIN)" `Quick
            (golden "shortest_path");
          Alcotest.test_case "bom_rollup (stratified SUM)" `Quick
            (golden "bom_rollup");
          Alcotest.test_case "company_control (SUM below recursion)" `Quick
            (golden "company_control");
          Alcotest.test_case "frequent_paths (COUNT + discriminator)" `Quick
            (golden "frequent_paths");
        ] );
      ( "rejection",
        [
          Alcotest.test_case "nonmonotone.dbpl rejected" `Quick
            test_nonmonotone_rejected;
        ] );
    ]
