(* Durability: the write-ahead log, checkpoints, and crash recovery
   (lib/wal).

   The centerpiece is a seeded crash matrix: for each injected kill site
   — [wal.append] (mid-frame, torn bytes on disk), [wal.fsync] (record
   written, fsync never ran), [wal.checkpoint] (image written, rename
   never ran) and [wal.truncate] (checkpoint renamed, log never reset) —
   a durable database takes a randomized INSERT/DELETE stream with two
   live maintained views (a DRed transitive closure and a counting
   two-hop join) until the fault fires, then the directory is recovered
   into a fresh process image and compared, tuple for tuple and
   derivation count for derivation count, against an in-memory oracle
   that applied exactly the acknowledged batches.  Each site has a
   defined oracle: a kill inside [wal.append] loses the unacknowledged
   commit; the other three sites crash after the record (or image) is
   complete, so recovery must land after it.

   Around it: frame codec round-trips and CRC rejection, torn-tail
   truncation at raw byte offsets, empty-delta commits keeping the
   version sequence consecutive across recovery, and the PR 5 x PR 7
   interplay — a recovered server serving a maintained DRed view to a
   pinned BEGIN reader while the writer commits durably underneath. *)

open Dc_relation
open Dc_datalog
module Ast = Dc_calculus.Ast
module Database = Dc_core.Database
module Snapshot = Dc_core.Snapshot
module Ivm = Dc_ivm.Ivm
module Guard = Dc_guard.Guard
module Server = Dc_server.Server
module Rng = Dc_workload.Rng
module Graph_gen = Dc_workload.Graph_gen
module Codec = Dc_wal.Codec
module Wal = Dc_wal.Wal
module Durable = Dc_wal.Durable

let rel_testable = Alcotest.testable Relation.pp Relation.equal

(* ------------------------------------------------------------------ *)
(* Scratch directories *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let dir_counter = ref 0

let fresh_dir tag =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "dc_wal_test_%d_%s_%d" (Unix.getpid ()) tag !dir_counter)
  in
  rm_rf d;
  d

(* ------------------------------------------------------------------ *)
(* Shared workload: a graph, a DRed transitive closure and a counting
   two-hop view, randomized batches *)

let nodes = 10

let pair a b = Tuple.of_list [ Graph_gen.node a; Graph_gen.node b ]

(* hop(X,Z) :- edge(X,Y), edge(Y,Z) — non-recursive, so [materialize]
   picks the counting plan and the checkpoint must carry real
   derivation counts (a two-hop pair can derive many ways). *)
let hop_program =
  let open Syntax in
  [
    rule
      (atom "hop" [ var "X"; var "Z" ])
      [
        Pos (atom "edge" [ var "X"; var "Y" ]);
        Pos (atom "edge" [ var "Y"; var "Z" ]);
      ];
  ]

let path_range = Ast.Construct (Ast.Rel "__bottom_path", "path", [])

(* Declare edge, load [init], and materialize both views; used for the
   durable database and for its in-memory oracle alike. *)
let setup db init =
  Database.declare db "edge" Graph_gen.edge_schema;
  Database.set db "edge" init;
  let schema_of _ = Graph_gen.edge_schema in
  let declare_views program con =
    let defs, bottoms = Translate.to_constructors schema_of program in
    List.iter (fun (n, s) -> Database.declare db n s) bottoms;
    Database.define_constructors db defs;
    Ivm.materialize db ~constructor:con ~base:("__bottom_" ^ con) ~args:[]
  in
  let path = declare_views Oracle.tc_nonlinear "path" in
  let hop = declare_views hop_program "hop" in
  (path, hop)

(* One randomized batch against the current pure extent: deletions of
   existing tuples, insertions of absent ones, disjoint, never empty. *)
let gen_batch rng rel =
  let ops = 1 + Rng.int rng 4 in
  let dels = ref [] and adds = ref [] in
  let current = ref rel in
  for _ = 1 to ops do
    (* deletion candidates exclude same-batch insertions, so adds and
       dels stay disjoint and the predicted extent is order-independent *)
    let ts =
      List.filter (fun t -> Relation.mem t rel) (Relation.to_list !current)
    in
    if ts <> [] && Rng.bool rng 0.45 then begin
      let t = List.nth ts (Rng.int rng (List.length ts)) in
      current := Relation.remove t !current;
      dels := t :: !dels
    end
    else begin
      let t = pair (Rng.int rng nodes) (Rng.int rng nodes) in
      if not (Relation.mem t rel) && not (List.exists (Tuple.equal t) !adds)
      then begin
        current := Relation.add t !current;
        adds := t :: !adds
      end
    end
  done;
  if !adds = [] && !dels = [] then begin
    match Relation.to_list !current with
    | t :: _ ->
      dels := [ t ];
      current := Relation.remove t !current
    | [] ->
      adds := [ pair 0 1 ];
      current := Relation.add (pair 0 1) !current
  end;
  (!adds, !dels, !current)

(* ------------------------------------------------------------------ *)
(* State comparison: versions, every relation, every view's extent and
   derivation counts *)

let pp_supports ppf l =
  List.iter
    (fun (p, rows) ->
      Fmt.pf ppf "%s:" p;
      List.iter (fun (t, c) -> Fmt.pf ppf " %a=%d" Tuple.pp t c) rows)
    l

let supports_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (p, ra) (q, rb) ->
         String.equal p q
         && List.length ra = List.length rb
         && List.for_all2
              (fun (t, c) (u, d) -> Tuple.equal t u && c = d)
              ra rb)
       a b

let supports_testable = Alcotest.testable pp_supports supports_equal

let sorted_views db =
  List.sort (fun a b -> String.compare (Ivm.name a) (Ivm.name b)) (Ivm.views db)

let check_same_state ~msg oracle recovered =
  Alcotest.(check int)
    (msg ^ ": version")
    (Database.version oracle) (Database.version recovered);
  List.iter
    (fun name ->
      Alcotest.check rel_testable
        (Fmt.str "%s: relation %s" msg name)
        (Database.get oracle name)
        (Database.get recovered name))
    (List.sort String.compare (Database.relation_names oracle));
  let ov = sorted_views oracle and rv = sorted_views recovered in
  Alcotest.(check (list string))
    (msg ^ ": views")
    (List.map Ivm.name ov) (List.map Ivm.name rv);
  List.iter2
    (fun o r ->
      Alcotest.(check bool)
        (Fmt.str "%s: view %s not stale" msg (Ivm.name o))
        false (Ivm.is_stale r);
      Alcotest.check rel_testable
        (Fmt.str "%s: view %s extent" msg (Ivm.name o))
        (Ivm.value o) (Ivm.value r);
      Alcotest.check supports_testable
        (Fmt.str "%s: view %s derivation counts" msg (Ivm.name o))
        (Ivm.support_counts o) (Ivm.support_counts r))
    ov rv

(* ------------------------------------------------------------------ *)
(* Frame codec units *)

let test_codec_roundtrip () =
  let buf = Buffer.create 64 in
  Codec.varint buf 0;
  Codec.varint buf 300;
  Codec.zigzag buf (-7);
  Codec.string_ buf "hello, \"wal\"\n";
  Codec.tuple buf
    (Tuple.of_list
       [ Value.Int 42; Value.str "x"; Value.Bool true; Value.Float 1.5 ]);
  let frame = Codec.frame_string (Buffer.contents buf) in
  let payload, next = Codec.read_frame frame 0 in
  Alcotest.(check int) "frame consumed" (String.length frame) next;
  let c = Codec.cursor payload in
  Alcotest.(check int) "varint 0" 0 (Codec.read_varint c);
  Alcotest.(check int) "varint 300" 300 (Codec.read_varint c);
  Alcotest.(check int) "zigzag -7" (-7) (Codec.read_zigzag c);
  Alcotest.(check string) "string" "hello, \"wal\"\n" (Codec.read_string c);
  let t = Codec.read_tuple c in
  Alcotest.(check bool) "tuple" true
    (Tuple.equal t
       (Tuple.of_list
          [ Value.Int 42; Value.str "x"; Value.Bool true; Value.Float 1.5 ]));
  Alcotest.(check bool) "cursor drained" true (Codec.at_end c)

let test_codec_crc_rejects () =
  let frame = Codec.frame_string "payload bytes" in
  (* flip one payload byte: CRC must catch it *)
  let b = Bytes.of_string frame in
  Bytes.set b 9 (Char.chr (Char.code (Bytes.get b 9) lxor 0x40));
  (match Codec.read_frame (Bytes.to_string b) 0 with
  | _ -> Alcotest.fail "corrupt frame accepted"
  | exception Codec.Corrupt _ -> ());
  (* a truncated frame is torn, not silently short-read *)
  match Codec.read_frame (String.sub frame 0 (String.length frame - 1)) 0 with
  | _ -> Alcotest.fail "torn frame accepted"
  | exception Codec.Corrupt _ -> ()

(* ------------------------------------------------------------------ *)
(* Torn tails: byte-level truncation of wal.log loses exactly the torn
   suffix, and trailing garbage never reaches replay *)

let test_torn_tail () =
  (* ambient DC_FAILPOINT schedules (the CI crash-matrix axis) must not
     fire inside this test's own appends *)
  Guard.Failpoint.reset ();
  let dir = fresh_dir "torn" in
  let db = Database.create () in
  let _dur = Durable.open_dir ~db dir in
  Database.declare db "edge" Graph_gen.edge_schema;
  Database.set db "edge" (Graph_gen.chain 4);
  let rng = Rng.create 7 in
  let cur = ref (Graph_gen.chain 4) in
  (* expected extent after each of the 5 logged batches *)
  let states = ref [ (Database.version db, !cur) ] in
  for _ = 1 to 5 do
    let adds, dels, next = gen_batch rng !cur in
    Database.update_batch db [ ("edge", adds, dels) ];
    cur := next;
    states := (Database.version db, next) :: !states
  done;
  let wal_file = Filename.concat dir "wal.log" in
  let full = (Unix.stat wal_file).Unix.st_size in
  (* tear 3 bytes off the last frame: recovery must stop one batch short *)
  let fd = Unix.openfile wal_file [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (full - 3);
  Unix.close fd;
  let r1 = Durable.open_dir (* fresh db *) dir in
  let v4, e4 = List.nth !states 1 in
  Alcotest.(check int) "one batch lost" v4 (Database.version (Durable.db r1));
  Alcotest.check rel_testable "extent at torn recovery" e4
    (Database.get (Durable.db r1) "edge");
  (* now append garbage: replay must ignore the tail, not crash *)
  let fd = Unix.openfile wal_file [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  let garbage = "\xde\xad\xbe\xef garbage tail" in
  ignore (Unix.write_substring fd garbage 0 (String.length garbage));
  Unix.close fd;
  let r2 = Durable.open_dir dir in
  Alcotest.(check int) "garbage tail ignored" v4
    (Database.version (Durable.db r2));
  Alcotest.check rel_testable "extent after garbage tail" e4
    (Database.get (Durable.db r2) "edge");
  Durable.close r2

(* ------------------------------------------------------------------ *)
(* Empty deltas still log: the version sequence stays consecutive and
   recovery lands on the exact version, not just the same extent *)

let test_empty_delta_versions () =
  Guard.Failpoint.reset ();
  let dir = fresh_dir "empty" in
  let db = Database.create () in
  let dur = Durable.open_dir ~db dir in
  Database.declare db "edge" Graph_gen.edge_schema;
  Database.set db "edge" (Graph_gen.chain 3);
  Database.update_batch db [ ("edge", [ pair 7 8 ], []) ];
  Database.update_batch db [];
  Database.update_batch db [ ("edge", [], [ pair 7 8 ]) ];
  Database.update_batch db [];
  let v = Database.version db in
  let extent = Database.get db "edge" in
  Durable.close dur;
  let r = Durable.open_dir dir in
  Alcotest.(check int) "exact version" v (Database.version (Durable.db r));
  Alcotest.check rel_testable "extent" extent
    (Database.get (Durable.db r) "edge");
  Durable.close r

(* ------------------------------------------------------------------ *)
(* The crash matrix *)

let steps = 1000

exception Crashed of Tuple.t list * Tuple.t list

let crash_matrix site seed () =
  Guard.Failpoint.reset ();
  Fun.protect ~finally:Guard.Failpoint.reset @@ fun () ->
  let rng = Rng.create seed in
  let init =
    Graph_gen.random_graph ~seed:(Rng.int rng 1_000_000) ~nodes
      ~edges:(2 * nodes)
  in
  let dir = fresh_dir "crash" in
  let ddb = Database.create () in
  (* checkpoint_every low enough that the checkpoint-path sites fire
     well inside the stream *)
  let _dur = Durable.open_dir ~db:ddb ~checkpoint_every:25 dir in
  ignore (setup ddb init);
  let odb = Database.create () in
  ignore (setup odb init);
  Alcotest.(check int)
    (Fmt.str "setup versions agree (seed %d)" seed)
    (Database.version odb) (Database.version ddb);
  (* arm only after setup: DDL commits checkpoint through the same
     sites, and the kill must land inside the update stream *)
  let n =
    match site with
    | "wal.append" | "wal.fsync" -> 1 + Rng.int rng steps (* per record *)
    | _ -> 1 + Rng.int rng 30 (* per periodic checkpoint (every 25) *)
  in
  Guard.Failpoint.arm site n;
  let cur = ref init in
  (try
     for _ = 1 to steps do
       let adds, dels, next = gen_batch rng !cur in
       (try Database.update_batch ddb [ ("edge", adds, dels) ]
        with Guard.Exhausted (Guard.Fault_injected s, _) when s = site ->
          raise (Crashed (adds, dels)));
       (* acknowledged: mirror on the oracle *)
       Database.update_batch odb [ ("edge", adds, dels) ];
       cur := next
     done;
     Alcotest.failf "failpoint %s armed at %d never fired (seed %d)" site n
       seed
   with Crashed (adds, dels) ->
     (* [wal.append] tears the record before any complete frame reaches
        the disk, so the crashed commit is lost; the other sites kill
        after the record (or the checkpoint image) is complete, so
        recovery must land after the crashed commit *)
     if not (String.equal site "wal.append") then
       Database.update_batch odb [ ("edge", adds, dels) ]);
  (* recover the directory into a fresh process image *)
  let r = Durable.open_dir dir in
  check_same_state
    ~msg:(Fmt.str "%s (seed %d)" site seed)
    odb (Durable.db r);
  Alcotest.(check bool)
    (Fmt.str "durable lsn present (seed %d)" seed)
    true
    (Database.durable_lsn (Durable.db r) > 0);
  Durable.close r;
  (* a second, clean recovery: close wrote a checkpoint, so nothing
     replays and the state is unchanged *)
  let r2 = Durable.open_dir dir in
  Alcotest.(check int)
    (Fmt.str "clean reopen replays nothing (seed %d)" seed)
    0 (Durable.replayed r2);
  check_same_state
    ~msg:(Fmt.str "%s clean reopen (seed %d)" site seed)
    odb (Durable.db r2);
  Durable.close r2

(* ------------------------------------------------------------------ *)
(* Checkpoint policy: byte- and time-based scheduling bound the replay
   suffix where a record count cannot *)

let wal_bytes dir =
  match Unix.stat (Filename.concat dir "wal.log") with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> 0

let test_checkpoint_policy () =
  Guard.Failpoint.reset ();
  (* bytes: a 1-byte budget checkpoints after every data commit, so the
     log never holds a replay suffix *)
  let dir = fresh_dir "policy_bytes" in
  let db = Database.create () in
  let dur =
    Durable.open_dir ~db
      ~policy:{ Durable.cp_records = None; cp_bytes = Some 1; cp_seconds = None }
      dir
  in
  Database.declare db "edge" Graph_gen.edge_schema;
  Database.set db "edge" (Graph_gen.chain 3);
  for i = 10 to 14 do
    Database.update_batch db [ ("edge", [ pair i (i + 1) ], []) ];
    Alcotest.(check int)
      (Fmt.str "wal empty after commit %d" i)
      0 (wal_bytes dir)
  done;
  let v = Database.version db in
  Durable.close dur;
  let r = Durable.open_dir dir in
  Alcotest.(check int) "recovered from checkpoint alone" 0 (Durable.replayed r);
  Alcotest.(check int) "exact version" v (Database.version (Durable.db r));
  Durable.close r;
  (* a roomy byte budget does not checkpoint prematurely: the records
     accumulate in the log *)
  let dir = fresh_dir "policy_roomy" in
  let db = Database.create () in
  let dur =
    Durable.open_dir ~db
      ~policy:
        {
          Durable.cp_records = None;
          cp_bytes = Some (1024 * 1024);
          cp_seconds = None;
        }
      dir
  in
  Database.declare db "edge" Graph_gen.edge_schema;
  Database.set db "edge" (Graph_gen.chain 3);
  for i = 10 to 14 do
    Database.update_batch db [ ("edge", [ pair i (i + 1) ], []) ]
  done;
  Alcotest.(check bool) "records accumulate" true (wal_bytes dir > 0);
  Durable.close dur;
  (* time: a commit past the deadline checkpoints (measured at the
     commit, no timer thread) *)
  let dir = fresh_dir "policy_time" in
  let db = Database.create () in
  let dur =
    Durable.open_dir ~db
      ~policy:
        { Durable.cp_records = None; cp_bytes = None; cp_seconds = Some 0.05 }
      dir
  in
  Database.declare db "edge" Graph_gen.edge_schema;
  Database.set db "edge" (Graph_gen.chain 3);
  Unix.sleepf 0.06;
  Database.update_batch db [ ("edge", [ pair 10 11 ], []) ];
  Alcotest.(check int) "deadline commit checkpointed" 0 (wal_bytes dir);
  Durable.close dur;
  (* both knobs at once is ambiguous *)
  Alcotest.check_raises "policy + checkpoint_every rejected"
    (Invalid_argument
       "Durable.open_dir: pass checkpoint_every or policy, not both") (fun () ->
      ignore
        (Durable.open_dir ~checkpoint_every:5 ~policy:Durable.default_policy
           (fresh_dir "policy_both")))

(* ------------------------------------------------------------------ *)
(* Group commit: several commits buffered into one [Wal.append_batch]
   fsync.  The non-crash test proves the batched records replay; the
   [wal.group] crash test proves the recovery contract — the kill fires
   between the frames of the shared flush, so recovery lands on every
   fully-acknowledged group plus a prefix of the crashed one, at a
   per-commit boundary either way. *)

let test_group_commit_durability () =
  Guard.Failpoint.reset ();
  let dir = fresh_dir "group_ok" in
  let db = Database.create () in
  let dur = Durable.open_dir ~db dir in
  Database.declare db "edge" Graph_gen.edge_schema;
  Database.set db "edge" (Graph_gen.chain 3);
  let v = Database.version db in
  let lsn0 = Durable.durable_lsn dur in
  Durable.group dur (fun () ->
      Database.update_batch db [ ("edge", [ pair 7 8 ], []) ];
      Database.update_batch db [ ("edge", [ pair 8 9 ], []) ];
      Database.update_batch db [ ("edge", [], [ pair 7 8 ]) ]);
  Alcotest.(check int)
    "three versions in one group" (v + 3) (Database.version db);
  Alcotest.(check bool)
    "lsn advanced by the shared flush" true
    (Durable.durable_lsn dur >= lsn0 + 3);
  (* an empty group flushes nothing *)
  Durable.group dur (fun () -> ());
  Alcotest.(check int) "empty group" (v + 3) (Database.version db);
  (* a nested group joins the outer one *)
  Durable.group dur (fun () ->
      Durable.group dur (fun () ->
          Database.update_batch db [ ("edge", [ pair 6 7 ], []) ]));
  let vf = Database.version db in
  let extent = Database.get db "edge" in
  Alcotest.(check int) "nested group committed" (v + 4) vf;
  (* abandon the handle: recovery must replay the batched records from
     the log, not pick them up from a close-time checkpoint *)
  let r = Durable.open_dir dir in
  Alcotest.(check int) "exact version" vf (Database.version (Durable.db r));
  Alcotest.check rel_testable "extent" extent
    (Database.get (Durable.db r) "edge");
  Durable.close r

let crash_group seed () =
  Guard.Failpoint.reset ();
  Fun.protect ~finally:Guard.Failpoint.reset @@ fun () ->
  let rng = Rng.create seed in
  let init =
    Graph_gen.random_graph ~seed:(Rng.int rng 1_000_000) ~nodes
      ~edges:(2 * nodes)
  in
  let dir = fresh_dir "group_crash" in
  let ddb = Database.create () in
  let dur = Durable.open_dir ~db:ddb ~checkpoint_every:25 dir in
  ignore (setup ddb init);
  let v0 = Database.version ddb in
  (* [wal.group] ticks between the frames of one batched flush, so the
     kill lands inside some multi-commit group's shared fsync *)
  let n = 1 + Rng.int rng 150 in
  Guard.Failpoint.arm "wal.group" n;
  let cur = ref init in
  let committed = ref [] in (* every batch, in commit order *)
  let acked = ref 0 in (* batches inside fully-flushed groups *)
  let crashed_group = ref 0 in
  (try
     for _ = 1 to 120 do
       let size = 1 + Rng.int rng 4 in
       let group =
         List.init size (fun _ ->
             let adds, dels, next = gen_batch rng !cur in
             cur := next;
             (adds, dels))
       in
       committed := !committed @ group;
       match
         Durable.group dur (fun () ->
             List.iter
               (fun (adds, dels) ->
                 Database.update_batch ddb [ ("edge", adds, dels) ])
               group)
       with
       | () -> acked := !acked + size
       | exception Guard.Exhausted (Guard.Fault_injected "wal.group", _) ->
         crashed_group := size;
         raise Exit
     done;
     Alcotest.failf "wal.group armed at %d never fired (seed %d)" n seed
   with Exit -> ());
  (* recover the directory into a fresh process image: every
     acknowledged group must be there in full; of the crashed group only
     a prefix of complete records may survive *)
  let r = Durable.open_dir dir in
  let recovered = Database.version (Durable.db r) - v0 in
  let total = List.length !committed in
  if recovered < !acked || recovered > total then
    Alcotest.failf
      "seed %d: recovered %d batches outside [acked %d, acked + crashed \
       group %d]"
      seed recovered !acked total;
  (* replaying exactly [recovered] batches on a fresh oracle reproduces
     the recovered state — recovery stopped at a commit boundary *)
  let odb = Database.create () in
  ignore (setup odb init);
  List.iteri
    (fun i (adds, dels) ->
      if i < recovered then Database.update_batch odb [ ("edge", adds, dels) ])
    !committed;
  check_same_state ~msg:(Fmt.str "wal.group (seed %d)" seed) odb (Durable.db r);
  Durable.close r

(* ------------------------------------------------------------------ *)
(* PR 5 x PR 7 interplay: a maintained DRed view and a pinned BEGIN
   reader on a server recovered from a crash *)

let test_recovered_server_pinned_reader () =
  Guard.Failpoint.reset ();
  Fun.protect ~finally:Guard.Failpoint.reset @@ fun () ->
  let dir = fresh_dir "server" in
  let rng = Rng.create 11 in
  let init =
    Graph_gen.random_graph ~seed:(Rng.int rng 1_000_000) ~nodes
      ~edges:(2 * nodes)
  in
  (* phase 1: durable database with a DRed closure, killed mid-append *)
  let ddb = Database.create () in
  let _dur = Durable.open_dir ~db:ddb dir in
  ignore (setup ddb init);
  let cur = ref init in
  for _ = 1 to 5 do
    let adds, dels, next = gen_batch rng !cur in
    Database.update_batch ddb [ ("edge", adds, dels) ];
    cur := next
  done;
  Guard.Failpoint.arm "wal.append" 1;
  let adds, dels, _ = gen_batch rng !cur in
  (match Database.update_batch ddb [ ("edge", adds, dels) ] with
  | () -> Alcotest.fail "armed append did not crash"
  | exception Guard.Exhausted (Guard.Fault_injected "wal.append", _) -> ());
  (* the crashed batch was never acknowledged: [!cur] is the oracle *)
  let tc rel =
    Seminaive.query Oracle.tc_nonlinear
      (Facts.of_relation "edge" rel (Facts.empty ()))
      "path"
  in
  (* phase 2: recover into a serving stack *)
  let srv = Server.open_durable dir in
  let reader = Server.open_session srv in
  let writer = Server.open_session srv in
  let before, v0 = Server.query reader path_range in
  Alcotest.(check bool) "recovered closure" true
    (Facts.TS.equal
       (Relation.fold Facts.TS.add before Facts.TS.empty)
       (tc !cur));
  ignore (Server.execute reader "BEGIN;");
  (* a durable commit lands underneath the pinned reader *)
  let adds2, dels2, next2 = gen_batch rng !cur in
  Server.submit srv (fun () ->
      Database.update_batch (Server.db srv) [ ("edge", adds2, dels2) ]);
  ignore writer;
  let pinned, vp = Server.query reader path_range in
  Alcotest.(check int) "reader stays pinned" v0 vp;
  Alcotest.check rel_testable "pinned view unchanged" before pinned;
  ignore (Server.execute reader "COMMIT;");
  let after, va = Server.query reader path_range in
  Alcotest.(check bool) "commit unpins" true (va > v0);
  Alcotest.(check bool) "maintained closure after recovery" true
    (Facts.TS.equal
       (Relation.fold Facts.TS.add after Facts.TS.empty)
       (tc next2));
  Server.close_session reader;
  Server.close_session writer;
  (* graceful shutdown checkpoints; a reopen replays nothing and still
     serves the maintained view *)
  Server.shutdown srv;
  let r = Durable.open_dir dir in
  Alcotest.(check int) "clean restart" 0 (Durable.replayed r);
  let rview =
    match sorted_views (Durable.db r) with
    | [ _hop; path ] -> path
    | vs -> Alcotest.failf "expected 2 views, got %d" (List.length vs)
  in
  Alcotest.(check bool) "view survives shutdown" true
    (Facts.TS.equal
       (Relation.fold Facts.TS.add (Ivm.value rview) Facts.TS.empty)
       (tc next2));
  Durable.close r

(* ------------------------------------------------------------------ *)

let () =
  let sites =
    [ "wal.append"; "wal.fsync"; "wal.checkpoint"; "wal.truncate"; "wal.group" ]
  in
  (* [wal.group] only ticks inside a batched flush, so its kills run the
     group-commit workload; the other sites share the per-commit one *)
  let case site seed =
    if String.equal site "wal.group" then crash_group seed
    else crash_matrix site seed
  in
  (* The CI crash-matrix axis: DC_FAILPOINT="wal.<site>=<far future>"
     (Guard arms the ambient schedule itself; each crash test resets it
     and arms its own seeded count).  Naming a wal site narrows the
     matrix to that site and promotes it to several seeds. *)
  let env_site =
    match Sys.getenv_opt "DC_FAILPOINT" with
    | None -> None
    | Some spec ->
      String.split_on_char ',' spec
      |> List.filter_map (fun part ->
             match String.index_opt part '=' with
             | Some i -> Some (String.trim (String.sub part 0 i))
             | None -> Some (String.trim part))
      |> List.find_opt (fun s -> List.mem s sites)
  in
  let matrix =
    match env_site with
    | Some site ->
      List.map
        (fun seed ->
          Alcotest.test_case (Fmt.str "%s seed %d" site seed) `Quick
            (case site seed))
        [ 1; 2; 3; 4; 5 ]
    | _ ->
      List.concat_map
        (fun site ->
          List.map
            (fun seed ->
              Alcotest.test_case
                (Fmt.str "%s seed %d" site seed)
                `Quick (case site seed))
            [ 1; 2 ])
        sites
  in
  Alcotest.run "dc_wal"
    [
      ( "codec",
        [
          Alcotest.test_case "frame round-trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "crc rejects corruption" `Quick
            test_codec_crc_rejects;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "torn tail truncation" `Quick test_torn_tail;
          Alcotest.test_case "empty deltas stay consecutive" `Quick
            test_empty_delta_versions;
        ] );
      ("crash matrix", matrix);
      ( "checkpoint policy",
        [
          Alcotest.test_case "bytes and time criteria" `Quick
            test_checkpoint_policy;
        ] );
      ( "group commit",
        [
          Alcotest.test_case "batched records replay" `Quick
            test_group_commit_durability;
        ] );
      ( "serving",
        [
          Alcotest.test_case "recovered server, pinned reader" `Quick
            test_recovered_server_pinned_reader;
        ] );
    ]
