(* Tests for Dc_calculus: evaluation, typechecking, positivity, NNF. *)

open Dc_relation
open Dc_calculus
open Ast

let i n = Value.Int n

let rel_testable = Alcotest.testable Relation.pp Relation.equal

let bin = Schema.make [ ("src", Value.TInt); ("dst", Value.TInt) ]

let pairs l = Relation.of_pairs bin (List.map (fun (a, b) -> (i a, i b)) l)

let edges = pairs [ (1, 2); (2, 3); (3, 4); (2, 5) ]

let env () = Eval.make_env [ ("E", edges) ]

(* { EACH r IN E: r.src = 2 } *)
let test_select () =
  let q = Comp [ branch [ ("r", Rel "E") ] ~where:(eq (field "r" "src") (int 2)) ] in
  Alcotest.check rel_testable "selection"
    (pairs [ (2, 3); (2, 5) ])
    (Eval.eval_range (env ()) q)

(* join via two binders: <f.src, b.dst> OF EACH f IN E, EACH b IN E: f.dst = b.src *)
let join_query =
  Comp
    [
      branch
        [ ("f", Rel "E"); ("b", Rel "E") ]
        ~target:[ field "f" "src"; field "b" "dst" ]
        ~where:(eq (field "f" "dst") (field "b" "src"));
    ]

let test_join () =
  Alcotest.check rel_testable "join"
    (pairs [ (1, 3); (1, 5); (2, 4) ])
    (Eval.eval_range (env ()) join_query)

(* union of branches *)
let test_union_branches () =
  let q =
    Comp
      [
        branch [ ("r", Rel "E") ] ~where:(eq (field "r" "src") (int 1));
        branch [ ("r", Rel "E") ] ~where:(eq (field "r" "dst") (int 4));
      ]
  in
  Alcotest.check rel_testable "union"
    (pairs [ (1, 2); (3, 4) ])
    (Eval.eval_range (env ()) q)

(* SOME / ALL / NOT *)
let test_quantifiers () =
  (* sources that reach a node that itself has a successor:
     EACH r IN E: SOME x IN E (r.dst = x.src) *)
  let q =
    Comp
      [
        branch [ ("r", Rel "E") ]
          ~where:(Some_in ("x", Rel "E", eq (field "r" "dst") (field "x" "src")));
      ]
  in
  Alcotest.check rel_testable "SOME"
    (pairs [ (1, 2); (2, 3) ])
    (Eval.eval_range (env ()) q);
  (* edges whose target is terminal: NOT SOME x (dst = x.src) *)
  let q2 =
    Comp
      [
        branch [ ("r", Rel "E") ]
          ~where:
            (Not
               (Some_in ("x", Rel "E", eq (field "r" "dst") (field "x" "src"))));
      ]
  in
  Alcotest.check rel_testable "NOT SOME"
    (pairs [ (2, 5); (3, 4) ])
    (Eval.eval_range (env ()) q2);
  (* ALL over an empty range is vacuously true *)
  let empty_env = Eval.make_env [ ("E", Relation.empty bin) ] in
  Alcotest.check Alcotest.bool "vacuous ALL" true
    (Eval.eval_formula empty_env
       (All_in ("x", Rel "E", eq (field "x" "src") (int 0))))

let test_membership () =
  let f = Member ([ int 1; int 2 ], Rel "E") in
  Alcotest.check Alcotest.bool "member" true (Eval.eval_formula (env ()) f);
  let f2 = Member ([ int 1; int 5 ], Rel "E") in
  Alcotest.check Alcotest.bool "not member" false (Eval.eval_formula (env ()) f2)

let test_nested_comprehension () =
  (* range nesting (N1): successors of successors of 1, through a nested
     comprehension as range *)
  let inner =
    Comp [ branch [ ("r", Rel "E") ] ~where:(eq (field "r" "src") (int 1)) ]
  in
  let q =
    Comp
      [
        branch
          [ ("s", inner); ("b", Rel "E") ]
          ~target:[ field "s" "src"; field "b" "dst" ]
          ~where:(eq (field "s" "dst") (field "b" "src"));
      ]
  in
  Alcotest.check rel_testable "nested range"
    (pairs [ (1, 3); (1, 5) ])
    (Eval.eval_range (env ()) q)

let test_arith_target () =
  let q =
    Comp
      [
        branch [ ("r", Rel "E") ]
          ~target:
            [ field "r" "src"; Binop (Mul, field "r" "dst", int 10) ];
      ]
  in
  Alcotest.check rel_testable "computed target"
    (pairs [ (1, 20); (2, 30); (3, 40); (2, 50) ])
    (Eval.eval_range (env ()) q)

(* ------------------------------------------------------------------ *)
(* Typechecking *)

let tenv = Typecheck.env [ ("E", bin) ]

let test_typecheck_ok () =
  Typecheck.check_query tenv join_query;
  Alcotest.check Alcotest.bool "well-typed join" true true

let expect_type_error name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Typecheck.Error")
  | exception Typecheck.Error _ -> ()

let test_typecheck_errors () =
  expect_type_error "unknown relation" (fun () ->
      Typecheck.check_query tenv (Rel "Nope"));
  expect_type_error "unknown attribute" (fun () ->
      Typecheck.check_query tenv
        (Comp [ branch [ ("r", Rel "E") ] ~where:(eq (field "r" "nope") (int 1)) ]));
  expect_type_error "type mismatch in comparison" (fun () ->
      Typecheck.check_query tenv
        (Comp
           [ branch [ ("r", Rel "E") ] ~where:(eq (field "r" "src") (str "x")) ]));
  expect_type_error "unbound variable" (fun () ->
      Typecheck.check_query tenv
        (Comp [ branch [ ("r", Rel "E") ] ~where:(eq (field "q" "src") (int 1)) ]));
  expect_type_error "identity with two binders" (fun () ->
      Typecheck.check_query tenv
        (Comp [ branch [ ("a", Rel "E"); ("b", Rel "E") ] ]));
  expect_type_error "incompatible union branches" (fun () ->
      Typecheck.check_query tenv
        (Comp
           [
             branch [ ("r", Rel "E") ];
             branch [ ("r", Rel "E") ] ~target:[ field "r" "src" ];
           ]))

(* ------------------------------------------------------------------ *)
(* Positivity and NNF *)

let test_positivity_counts () =
  (* NOT (r IN X): X at depth 1 *)
  let f = Not (In_rel ("r", Rel "X")) in
  (match Positivity.occurrences_formula f with
  | [ { occ_target = Positivity.Rel_name "X"; occ_depth = 1 } ] -> ()
  | _ -> Alcotest.fail "expected X at depth 1");
  (* ALL x IN X (x IN Y): X depth 1, Y depth 0 *)
  let f2 = All_in ("x", Rel "X", In_rel ("x", Rel "Y")) in
  let occs = Positivity.occurrences_formula f2 in
  let depth name =
    List.find_map
      (fun o ->
        if o.Positivity.occ_target = Positivity.Rel_name name then
          Some o.Positivity.occ_depth
        else None)
      occs
  in
  Alcotest.check Alcotest.(option int) "X under ALL" (Some 1) (depth "X");
  Alcotest.check Alcotest.(option int) "Y not under ALL" (Some 0) (depth "Y");
  (* NOT ALL x IN X: depth 2 (even => positive) *)
  let f3 = Not (All_in ("x", Rel "X", True)) in
  match Positivity.occurrences_formula f3 with
  | [ { occ_target = Positivity.Rel_name "X"; occ_depth = 2 } ] -> ()
  | _ -> Alcotest.fail "expected X at depth 2"

let test_nnf () =
  let f =
    Not (And (In_rel ("r", Rel "X"), Not (Some_in ("x", Rel "Y", True))))
  in
  let n = Normalize.nnf f in
  Alcotest.check Alcotest.bool "result is NNF" true (Normalize.is_nnf n);
  (* NOT(a AND NOT b) => NOT a OR b *)
  (match n with
  | Or (Not (In_rel _), Some_in _) -> ()
  | _ -> Alcotest.failf "unexpected NNF: %a" Ast.pp_formula n);
  (* double negation *)
  let f2 = Not (Not (In_rel ("r", Rel "X"))) in
  Alcotest.check Alcotest.bool "double negation" true
    (Normalize.nnf f2 = In_rel ("r", Rel "X"))

let test_polarity () =
  (* X positive under NOT NOT; negative under single NOT *)
  let pos = Not (Not (In_rel ("r", Rel "X"))) in
  Alcotest.check Alcotest.bool "even => monotone" true
    (Normalize.monotone_in_formula pos (Positivity.Rel_name "X"));
  let negf = Not (In_rel ("r", Rel "X")) in
  Alcotest.check Alcotest.bool "odd => not monotone" false
    (Normalize.monotone_in_formula negf (Positivity.Rel_name "X"));
  (* ALL range is antitone, ALL body keeps polarity *)
  let allf = All_in ("x", Rel "X", In_rel ("x", Rel "Y")) in
  Alcotest.check Alcotest.bool "ALL range antitone" false
    (Normalize.monotone_in_formula allf (Positivity.Rel_name "X"));
  Alcotest.check Alcotest.bool "ALL body monotone" true
    (Normalize.monotone_in_formula allf (Positivity.Rel_name "Y"))

(* The §3.3 lemma: positivity implies monotonicity — checked semantically.
   Generate random formulas over a relation X; when the positivity count
   says even, evaluation must be monotone in X on random extensions. *)
let arb_formula =
  let open QCheck in
  let leaf =
    Gen.oneof
      [
        Gen.return (In_rel ("r", Rel "X"));
        Gen.map (fun n -> Cmp (Eq, field "r" "src", Ast.int n)) (Gen.int_bound 5);
        Gen.return True;
      ]
  in
  let gen =
    Gen.sized
    @@ Gen.fix (fun self n ->
           if n = 0 then leaf
           else
             Gen.oneof
               [
                 leaf;
                 Gen.map (fun f -> Not f) (self (n / 2));
                 Gen.map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2));
                 Gen.map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2));
                 Gen.map
                   (fun f -> Some_in ("x", Rel "X", f))
                   (self (n / 2));
                 Gen.map (fun f -> All_in ("x", Rel "X", f)) (self (n / 2));
               ])
  in
  make gen ~print:formula_to_string

let prop_positivity_implies_monotone =
  QCheck.Test.make ~name:"positive formulas are monotone (lemma 3.3)"
    ~count:200
    QCheck.(pair arb_formula (pair QCheck.(list_of_size (Gen.int_bound 5) (QCheck.pair QCheck.(int_bound 4) QCheck.(int_bound 4))) QCheck.(list_of_size (Gen.int_bound 3) (QCheck.pair QCheck.(int_bound 4) QCheck.(int_bound 4)))))
    (fun (f, (small_pairs, extra_pairs)) ->
      QCheck.assume (Positivity.positive_in_formula f "X");
      let small = pairs small_pairs in
      let big = Relation.union small (pairs extra_pairs) in
      let count rel =
        let env = Eval.make_env [ ("X", rel) ] in
        Relation.fold
          (fun t n ->
            if
              Eval.eval_formula
                (Eval.bind_var env "r" t bin)
                f
            then n + 1
            else n)
          big 0
      in
      (* every tuple satisfying f under the small X still satisfies it
         under the bigger X *)
      let env_small = Eval.make_env [ ("X", small) ] in
      let env_big = Eval.make_env [ ("X", big) ] in
      Relation.for_all
        (fun t ->
          (not (Eval.eval_formula (Eval.bind_var env_small "r" t bin) f))
          || Eval.eval_formula (Eval.bind_var env_big "r" t bin) f)
        big
      |> fun ok -> ignore (count small); ok)

let prop_nnf_preserves_semantics =
  QCheck.Test.make ~name:"nnf preserves truth" ~count:200
    QCheck.(
      pair arb_formula
        (list_of_size (Gen.int_bound 6) (pair (int_bound 4) (int_bound 4))))
    (fun (f, ps) ->
      let rel = pairs ps in
      let env = Eval.make_env [ ("X", rel) ] in
      Relation.for_all
        (fun t ->
          let env = Eval.bind_var env "r" t bin in
          Eval.eval_formula env f = Eval.eval_formula env (Normalize.nnf f))
        rel)

(* ------------------------------------------------------------------ *)
(* More evaluation corner cases *)

let test_correlated_nested_range () =
  (* the inner comprehension's predicate references the outer binder:
     EACH r IN E, EACH s IN {EACH x IN E: x.src = r.dst}: TRUE
     with target <r.src, s.dst> — two-step paths via a correlated range *)
  let q =
    Comp
      [
        branch
          [
            ("r", Rel "E");
            ( "s",
              Comp
                [
                  branch [ ("x", Rel "E") ]
                    ~where:(eq (field "x" "src") (field "r" "dst"));
                ] );
          ]
          ~target:[ field "r" "src"; field "s" "dst" ];
      ]
  in
  Alcotest.check rel_testable "correlated range"
    (pairs [ (1, 3); (1, 5); (2, 4) ])
    (Eval.eval_range (env ()) q)

let test_quantifier_shadowing () =
  (* inner SOME shadows the outer binder name *)
  let q =
    Comp
      [
        branch [ ("r", Rel "E") ]
          ~where:
            (Some_in
               ( "r",
                 Rel "E",
                 (* this r is the inner one *)
                 eq (field "r" "src") (int 3) ));
      ]
  in
  (* some edge with src=3 exists, so the condition holds for every tuple *)
  Alcotest.check Alcotest.int "shadowed quantifier" 4
    (Relation.cardinal (Eval.eval_range (env ()) q))

let test_or_not_filters () =
  let q =
    Comp
      [
        branch [ ("r", Rel "E") ]
          ~where:
            (disj
               (eq (field "r" "src") (int 1))
               (Not (Cmp (Lt, field "r" "dst", int 5))));
      ]
  in
  Alcotest.check rel_testable "OR/NOT filter"
    (pairs [ (1, 2); (2, 5) ])
    (Eval.eval_range (env ()) q)

let test_member_with_binop () =
  let f = Member ([ int 1; Binop (Add, int 1, int 1) ], Rel "E") in
  Alcotest.check Alcotest.bool "computed membership" true
    (Eval.eval_formula (env ()) f)

(* Brute-force reference evaluation: enumerate all binder combinations,
   evaluate the full WHERE at the end — no conjunct scheduling, no
   indexes.  The optimized evaluator must agree on random branches. *)
let brute_force env (branches : branch list) =
  let edges_rel = Eval.lookup_rel env "E" in
  let schema = Relation.schema edges_rel in
  List.concat_map
    (fun (b : branch) ->
      let rec loop env = function
        | [] ->
          if Eval.eval_formula env b.where then
            [ Tuple.of_list (List.map (Eval.eval_term env) b.target) ]
          else []
        | (v, Rel "E") :: rest ->
          Relation.fold
            (fun t acc -> loop (Eval.bind_var env v t schema) rest @ acc)
            edges_rel []
        | _ -> assert false
      in
      loop env b.binders)
    branches

let arb_branch_query =
  let open QCheck in
  let term v =
    Gen.oneof
      [ Gen.oneofl [ field v "src"; field v "dst" ]; Gen.map Ast.int (Gen.int_bound 5) ]
  in
  let vars = [ "a"; "b"; "c" ] in
  let any_term = Gen.oneof (List.map term vars) in
  let cmp =
    Gen.map3
      (fun op x y -> Cmp (op, x, y))
      (Gen.oneofl [ Eq; Ne; Lt; Le; Gt; Ge ])
      any_term any_term
  in
  let rec formula n =
    if n = 0 then cmp
    else
      Gen.oneof
        [
          cmp;
          Gen.map (fun f -> Not f) (formula (n - 1));
          Gen.map2 (fun x y -> And (x, y)) (formula (n - 1)) (formula (n - 1));
          Gen.map2 (fun x y -> Or (x, y)) (formula (n - 1)) (formula (n - 1));
          Gen.map
            (fun f -> Some_in ("q", Rel "E", f))
            (formula (n - 1));
        ]
  in
  let gen =
    Gen.sized (fun n ->
        Gen.map
          (fun f ->
            [
              branch
                [ ("a", Rel "E"); ("b", Rel "E"); ("c", Rel "E") ]
                ~target:[ field "a" "src"; field "c" "dst" ]
                ~where:f;
            ])
          (formula (min n 4)))
  in
  make gen ~print:(fun bs -> range_to_string (Comp bs))

let prop_scheduler_equals_brute_force =
  QCheck.Test.make ~name:"join scheduler = brute force" ~count:150
    arb_branch_query (fun branches ->
      let e = env () in
      let optimized = Eval.eval_range e (Comp branches) in
      let brute =
        List.fold_left
          (fun acc t -> Relation.add_unchecked t acc)
          (Relation.empty (Relation.schema optimized))
          (brute_force e branches)
      in
      Relation.equal optimized brute)

(* ------------------------------------------------------------------ *)
(* More typechecking *)

let test_typecheck_args () =
  let sel =
    {
      Defs.sel_name = "s";
      sel_formal = "Rel";
      sel_formal_schema = bin;
      sel_params = [ Defs.Scalar_param ("P", Value.TInt) ];
      sel_var = "r";
      sel_pred = eq (field "r" "src") (Param "P");
    }
  in
  let tenv = Typecheck.env ~selectors:[ sel ] [ ("E", bin) ] in
  Typecheck.check_query tenv (Select (Rel "E", "s", [ Arg_scalar (int 1) ]));
  expect_type_error "wrong arity" (fun () ->
      Typecheck.check_query tenv (Select (Rel "E", "s", [])));
  expect_type_error "wrong type" (fun () ->
      Typecheck.check_query tenv (Select (Rel "E", "s", [ Arg_scalar (str "x") ])));
  expect_type_error "relation for scalar" (fun () ->
      Typecheck.check_query tenv
        (Select (Rel "E", "s", [ Arg_range (Rel "E") ])))

let test_typecheck_selector_def () =
  let bad =
    {
      Defs.sel_name = "bad";
      sel_formal = "Rel";
      sel_formal_schema = bin;
      sel_params = [];
      sel_var = "r";
      sel_pred = eq (field "r" "nope") (int 1);
    }
  in
  let tenv = Typecheck.env [ ("E", bin) ] in
  expect_type_error "bad selector body" (fun () ->
      Typecheck.check_selector_def tenv bad)

let test_typecheck_constructor_result () =
  let bad =
    {
      Defs.con_name = "bad";
      con_formal = "Rel";
      con_formal_schema = bin;
      con_params = [];
      con_result = Schema.make [ ("only", Value.TInt) ];
      con_agg = None;
      con_body = [ identity_branch (Rel "Rel") ];
    }
  in
  let tenv = Typecheck.env [ ("E", bin) ] in
  expect_type_error "result type mismatch" (fun () ->
      Typecheck.check_constructor_def tenv bad)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dc_calculus"
    [
      ( "eval",
        [
          Alcotest.test_case "selection" `Quick test_select;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "union branches" `Quick test_union_branches;
          Alcotest.test_case "quantifiers" `Quick test_quantifiers;
          Alcotest.test_case "membership" `Quick test_membership;
          Alcotest.test_case "nested comprehension" `Quick
            test_nested_comprehension;
          Alcotest.test_case "computed target" `Quick test_arith_target;
          Alcotest.test_case "correlated nested range" `Quick
            test_correlated_nested_range;
          Alcotest.test_case "quantifier shadowing" `Quick
            test_quantifier_shadowing;
          Alcotest.test_case "OR/NOT filters" `Quick test_or_not_filters;
          Alcotest.test_case "computed membership" `Quick test_member_with_binop;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "accepts well-typed" `Quick test_typecheck_ok;
          Alcotest.test_case "rejects ill-typed" `Quick test_typecheck_errors;
          Alcotest.test_case "argument checking" `Quick test_typecheck_args;
          Alcotest.test_case "selector body" `Quick test_typecheck_selector_def;
          Alcotest.test_case "constructor result" `Quick
            test_typecheck_constructor_result;
        ] );
      ( "positivity",
        [
          Alcotest.test_case "depth counting" `Quick test_positivity_counts;
          Alcotest.test_case "nnf" `Quick test_nnf;
          Alcotest.test_case "polarity" `Quick test_polarity;
        ] );
      ( "properties",
        qcheck
          [
            prop_positivity_implies_monotone;
            prop_nnf_preserves_semantics;
            prop_scheduler_equals_brute_force;
          ] );
    ]
