(* Seeded differential oracle, shared by the test executables.

   Six independent evaluators — naive, semi-naive, magic, tabled, a
   hand-rolled fixpoint driving the compiled IR pipelines directly, and
   the parallel semi-naive engine (forced onto the sharded code path at
   P = 1 and P = 4 regardless of physical cores) — must agree on every
   workload.  [case_of_seed] derives a complete test case (program shape
   + randomized EDB from the lib/workload generators) from one explicit
   {!Dc_workload.Rng} seed, and every assertion message carries that
   seed, so any failure is reproducible with [Oracle.check_seed <seed>]. *)

open Dc_relation
open Dc_datalog
open Syntax

module Ir = Dc_exec.Ir
module TS = Facts.TS
module Rng = Dc_workload.Rng
module Graph_gen = Dc_workload.Graph_gen
module Bom_gen = Dc_workload.Bom_gen

let facts_testable =
  Alcotest.testable
    (fun ppf s -> Facts.TS.iter (Tuple.pp ppf) s)
    Facts.TS.equal

(* ------------------------------------------------------------------ *)
(* The fifth implementation: compile each rule with the shared rule
   compiler, then drive the pipelines with a hand-rolled naive fixpoint
   independent of the engines' round/driver logic. *)

let compile ?reorder ?card ?bound rule =
  Engine.compile_rule ?reorder ?card ?bound
    ~source:(fun _ (a : atom) -> Engine.Static (Ir.Named a.pred))
    ~neg_source:(fun (a : atom) -> Ir.Named a.pred)
    ~label:(lazy (Fmt.str "%a" pp_rule rule))
    rule

let direct_ir (program : program) (edb : Facts.t) pred =
  let pipelines =
    List.map
      (fun (p, rules) ->
        (p, List.map (fun r -> (compile r).Engine.pipeline) rules))
      (Engine.group_by_head program)
  in
  let store = ref edb in
  let changed = ref true in
  while !changed do
    changed := false;
    let ctx = Engine.store_ctx !store in
    let news =
      List.map
        (fun (p, pipes) ->
          let fresh = ref TS.empty in
          List.iter
            (fun pipe -> Ir.run ctx pipe (fun t -> fresh := TS.add t !fresh))
            pipes;
          (p, TS.diff !fresh (Facts.find !store p)))
        pipelines
    in
    List.iter
      (fun (p, s) ->
        if not (TS.is_empty s) then begin
          changed := true;
          store := Facts.add_set !store p s
        end)
      news
  done;
  Facts.find !store pred

(* ------------------------------------------------------------------ *)
(* Program shapes *)

let tc_linear =
  [
    rule (atom "path" [ var "X"; var "Y" ]) [ Pos (atom "edge" [ var "X"; var "Y" ]) ];
    rule
      (atom "path" [ var "X"; var "Z" ])
      [ Pos (atom "edge" [ var "X"; var "Y" ]); Pos (atom "path" [ var "Y"; var "Z" ]) ];
  ]

let tc_left_linear =
  [
    rule (atom "path" [ var "X"; var "Y" ]) [ Pos (atom "edge" [ var "X"; var "Y" ]) ];
    rule
      (atom "path" [ var "X"; var "Z" ])
      [ Pos (atom "path" [ var "X"; var "Y" ]); Pos (atom "edge" [ var "Y"; var "Z" ]) ];
  ]

let tc_nonlinear =
  [
    rule (atom "path" [ var "X"; var "Y" ]) [ Pos (atom "edge" [ var "X"; var "Y" ]) ];
    rule
      (atom "path" [ var "X"; var "Z" ])
      [ Pos (atom "path" [ var "X"; var "Y" ]); Pos (atom "path" [ var "Y"; var "Z" ]) ];
  ]

(* sg(X,Y) :- flat(X,Y).
   sg(X,Y) :- up(X,U), sg(U,V), down(V,Y). *)
let sg_program =
  [
    rule (atom "sg" [ var "X"; var "Y" ]) [ Pos (atom "flat" [ var "X"; var "Y" ]) ];
    rule
      (atom "sg" [ var "X"; var "Y" ])
      [
        Pos (atom "up" [ var "X"; var "U" ]);
        Pos (atom "sg" [ var "U"; var "V" ]);
        Pos (atom "down" [ var "V"; var "Y" ]);
      ];
  ]

(* mutual recursion: even/odd reachability from a start node *)
let mutual_program =
  [
    rule (atom "even" [ var "X" ]) [ Pos (atom "start" [ var "X" ]) ];
    rule
      (atom "even" [ var "Y" ])
      [ Pos (atom "odd" [ var "X" ]); Pos (atom "edge" [ var "X"; var "Y" ]) ];
    rule
      (atom "odd" [ var "Y" ])
      [ Pos (atom "even" [ var "X" ]); Pos (atom "edge" [ var "X"; var "Y" ]) ];
  ]

(* parts-explosion reachability over the ternary Contains relation (the
   quantity column rides along unbound in the recursive rule) *)
let bom_program =
  [
    rule
      (atom "reach" [ var "A"; var "C" ])
      [ Pos (atom "contains" [ var "A"; var "C"; var "Q" ]) ];
    rule
      (atom "reach" [ var "A"; var "C" ])
      [
        Pos (atom "contains" [ var "A"; var "B"; var "Q" ]);
        Pos (atom "reach" [ var "B"; var "C" ]);
      ];
  ]

let edb_of_relation pred rel = Facts.of_relation pred rel (Facts.empty ())

(* ------------------------------------------------------------------ *)
(* Agreement checks *)

let check_engines_agree ~msg program edb pred arity =
  let reference = Naive.query program edb pred in
  Alcotest.check facts_testable (msg ^ ": seminaive = naive") reference
    (Seminaive.query program edb pred);
  Alcotest.check facts_testable (msg ^ ": direct IR = naive") reference
    (direct_ir program edb pred);
  (* the parallel engine, with the cutoff floored so even tiny generated
     deltas take the sharded path; P = 1 exercises the single-shard
     degeneration, P = 4 oversubscribes the pool when cores are few *)
  List.iter
    (fun p ->
      Alcotest.check facts_testable
        (Fmt.str "%s: parallel(P=%d) = naive" msg p)
        reference
        (Dc_par.Par.with_seq_cutoff 1 (fun () ->
             Seminaive.query ~domains:p program edb pred)))
    [ 1; 4 ];
  (* magic with an all-free query must still return everything *)
  (match
     Magic.answer program edb
       (atom pred (List.init arity (fun k -> Var (Fmt.str "Q%d" k))))
   with
  | answers ->
    Alcotest.check facts_testable (msg ^ ": magic = naive") reference answers
  | exception Magic.Unsupported _ -> ());
  reference

(* bound goal: first argument fixed to a value present in the answers *)
let check_bound_goal_engines ~msg program edb pred start reference =
  let goal = atom pred [ Const start; var "Y" ] in
  let expected =
    TS.filter (fun t -> Value.equal (Tuple.get t 0) start) reference
  in
  Alcotest.check facts_testable (msg ^ ": tabled = restricted naive") expected
    (Tabled.solve program edb goal);
  Alcotest.check facts_testable (msg ^ ": magic = restricted naive") expected
    (Magic.answer program edb goal)

(* ------------------------------------------------------------------ *)
(* Seeded case generation *)

type case = {
  case_name : string;  (** shape + generator parameters, for messages *)
  case_program : program;
  case_edb : Facts.t;
  case_pred : string;
  case_arity : int;
}

let graph_case rng name program =
  let seed = Rng.int rng 1_000_000 in
  let nodes = 4 + Rng.int rng 13 in
  let edges = nodes + Rng.int rng 41 in
  {
    case_name = Fmt.str "%s(graph seed=%d nodes=%d edges=%d)" name seed nodes edges;
    case_program = program;
    case_edb = edb_of_relation "edge" (Graph_gen.random_graph ~seed ~nodes ~edges);
    case_pred = "path";
    case_arity = 2;
  }

let sg_case rng =
  (* independent random up/flat/down graphs: exercises sg off the balanced
     tree the examples use *)
  let seed k = Rng.int rng 1_000_000 + k in
  let nodes = 4 + Rng.int rng 9 in
  let g s = Graph_gen.random_graph ~seed:s ~nodes ~edges:(nodes + Rng.int rng 11) in
  let s1 = seed 0 and s2 = seed 1 and s3 = seed 2 in
  let edb =
    Facts.of_relation "up" (g s1)
      (Facts.of_relation "flat" (g s2)
         (Facts.of_relation "down" (g s3) (Facts.empty ())))
  in
  {
    case_name = Fmt.str "sg(seeds=%d,%d,%d nodes=%d)" s1 s2 s3 nodes;
    case_program = sg_program;
    case_edb = edb;
    case_pred = "sg";
    case_arity = 2;
  }

let mutual_case rng =
  let seed = Rng.int rng 1_000_000 in
  let nodes = 4 + Rng.int rng 9 in
  let edges = nodes + Rng.int rng 21 in
  let edb =
    Facts.add
      (edb_of_relation "edge" (Graph_gen.random_graph ~seed ~nodes ~edges))
      "start"
      (Tuple.make1 (Graph_gen.node (Rng.int rng nodes)))
  in
  {
    case_name = Fmt.str "mutual(graph seed=%d nodes=%d edges=%d)" seed nodes edges;
    case_program = mutual_program;
    case_edb = edb;
    case_pred = (if Rng.bool rng 0.5 then "even" else "odd");
    case_arity = 1;
  }

let bom_case rng =
  let seed = Rng.int rng 1_000_000 in
  let levels = 2 + Rng.int rng 3 in
  let width = 2 + Rng.int rng 4 in
  let uses = 1 + Rng.int rng width in
  let uses = min uses width in
  let edb =
    edb_of_relation "contains" (Bom_gen.hierarchy ~seed ~levels ~width ~uses)
  in
  {
    case_name =
      Fmt.str "bom(seed=%d levels=%d width=%d uses=%d)" seed levels width uses;
    case_program = bom_program;
    case_edb = edb;
    case_pred = "reach";
    case_arity = 2;
  }

let shapes =
  [
    (fun rng -> graph_case rng "tc_linear" tc_linear);
    (fun rng -> graph_case rng "tc_left_linear" tc_left_linear);
    (fun rng -> graph_case rng "tc_nonlinear" tc_nonlinear);
    sg_case;
    mutual_case;
    bom_case;
  ]

let case_of_seed seed =
  let rng = Rng.create seed in
  (Rng.pick rng shapes) rng

(* Run the full 5-way agreement check for one seed.  Raises an Alcotest
   check failure whose message includes both the seed and the generated
   case description. *)
let check_seed seed =
  let c = case_of_seed seed in
  let msg = Fmt.str "seed %d: %s" seed c.case_name in
  let reference =
    check_engines_agree ~msg c.case_program c.case_edb c.case_pred c.case_arity
  in
  if c.case_arity = 2 then
    match TS.choose_opt reference with
    | Some t ->
      check_bound_goal_engines ~msg c.case_program c.case_edb c.case_pred
        (Tuple.get t 0) reference
    | None -> ()
