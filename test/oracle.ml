(* Seeded differential oracle, shared by the test executables.

   Six independent evaluators — naive, semi-naive, magic, tabled, a
   hand-rolled fixpoint driving the compiled IR pipelines directly, and
   the parallel semi-naive engine (forced onto the sharded code path at
   P = 1 and P = 4 regardless of physical cores) — must agree on every
   workload.  [case_of_seed] derives a complete test case (program shape
   + randomized EDB from the lib/workload generators) from one explicit
   {!Dc_workload.Rng} seed, and every assertion message carries that
   seed, so any failure is reproducible with [Oracle.check_seed <seed>]. *)

open Dc_relation
open Dc_datalog
open Syntax

module Ir = Dc_exec.Ir
module TS = Facts.TS
module Rng = Dc_workload.Rng
module Graph_gen = Dc_workload.Graph_gen
module Bom_gen = Dc_workload.Bom_gen

let facts_testable =
  Alcotest.testable
    (fun ppf s -> Facts.TS.iter (Tuple.pp ppf) s)
    Facts.TS.equal

(* ------------------------------------------------------------------ *)
(* The fifth implementation: compile each rule with the shared rule
   compiler, then drive the pipelines with a hand-rolled naive fixpoint
   independent of the engines' round/driver logic. *)

let compile ?reorder ?card ?bound rule =
  Engine.compile_rule ?reorder ?card ?bound
    ~source:(fun _ (a : atom) -> Engine.Static (Ir.Named a.pred))
    ~neg_source:(fun (a : atom) -> Ir.Named a.pred)
    ~label:(lazy (Fmt.str "%a" pp_rule rule))
    rule

let direct_ir (program : program) (edb : Facts.t) pred =
  let pipelines =
    List.map
      (fun (p, rules) ->
        (p, List.map (fun r -> (compile r).Engine.pipeline) rules))
      (Engine.group_by_head program)
  in
  let store = ref edb in
  let changed = ref true in
  while !changed do
    changed := false;
    let ctx = Engine.store_ctx !store in
    let news =
      List.map
        (fun (p, pipes) ->
          let fresh = ref TS.empty in
          List.iter
            (fun pipe -> Ir.run ctx pipe (fun t -> fresh := TS.add t !fresh))
            pipes;
          (p, TS.diff !fresh (Facts.find !store p)))
        pipelines
    in
    List.iter
      (fun (p, s) ->
        if not (TS.is_empty s) then begin
          changed := true;
          store := Facts.add_set !store p s
        end)
      news
  done;
  Facts.find !store pred

(* ------------------------------------------------------------------ *)
(* Program shapes *)

let tc_linear =
  [
    rule (atom "path" [ var "X"; var "Y" ]) [ Pos (atom "edge" [ var "X"; var "Y" ]) ];
    rule
      (atom "path" [ var "X"; var "Z" ])
      [ Pos (atom "edge" [ var "X"; var "Y" ]); Pos (atom "path" [ var "Y"; var "Z" ]) ];
  ]

let tc_left_linear =
  [
    rule (atom "path" [ var "X"; var "Y" ]) [ Pos (atom "edge" [ var "X"; var "Y" ]) ];
    rule
      (atom "path" [ var "X"; var "Z" ])
      [ Pos (atom "path" [ var "X"; var "Y" ]); Pos (atom "edge" [ var "Y"; var "Z" ]) ];
  ]

let tc_nonlinear =
  [
    rule (atom "path" [ var "X"; var "Y" ]) [ Pos (atom "edge" [ var "X"; var "Y" ]) ];
    rule
      (atom "path" [ var "X"; var "Z" ])
      [ Pos (atom "path" [ var "X"; var "Y" ]); Pos (atom "path" [ var "Y"; var "Z" ]) ];
  ]

(* sg(X,Y) :- flat(X,Y).
   sg(X,Y) :- up(X,U), sg(U,V), down(V,Y). *)
let sg_program =
  [
    rule (atom "sg" [ var "X"; var "Y" ]) [ Pos (atom "flat" [ var "X"; var "Y" ]) ];
    rule
      (atom "sg" [ var "X"; var "Y" ])
      [
        Pos (atom "up" [ var "X"; var "U" ]);
        Pos (atom "sg" [ var "U"; var "V" ]);
        Pos (atom "down" [ var "V"; var "Y" ]);
      ];
  ]

(* mutual recursion: even/odd reachability from a start node *)
let mutual_program =
  [
    rule (atom "even" [ var "X" ]) [ Pos (atom "start" [ var "X" ]) ];
    rule
      (atom "even" [ var "Y" ])
      [ Pos (atom "odd" [ var "X" ]); Pos (atom "edge" [ var "X"; var "Y" ]) ];
    rule
      (atom "odd" [ var "Y" ])
      [ Pos (atom "even" [ var "X" ]); Pos (atom "edge" [ var "X"; var "Y" ]) ];
  ]

(* parts-explosion reachability over the ternary Contains relation (the
   quantity column rides along unbound in the recursive rule) *)
let bom_program =
  [
    rule
      (atom "reach" [ var "A"; var "C" ])
      [ Pos (atom "contains" [ var "A"; var "C"; var "Q" ]) ];
    rule
      (atom "reach" [ var "A"; var "C" ])
      [
        Pos (atom "contains" [ var "A"; var "B"; var "Q" ]);
        Pos (atom "reach" [ var "B"; var "C" ]);
      ];
  ]

let edb_of_relation pred rel = Facts.of_relation pred rel (Facts.empty ())

(* ------------------------------------------------------------------ *)
(* Agreement checks *)

let check_engines_agree ~msg program edb pred arity =
  let reference = Naive.query program edb pred in
  Alcotest.check facts_testable (msg ^ ": seminaive = naive") reference
    (Seminaive.query program edb pred);
  Alcotest.check facts_testable (msg ^ ": direct IR = naive") reference
    (direct_ir program edb pred);
  (* the parallel engine, with the cutoff floored so even tiny generated
     deltas take the sharded path; P = 1 exercises the single-shard
     degeneration, P = 4 oversubscribes the pool when cores are few *)
  List.iter
    (fun p ->
      Alcotest.check facts_testable
        (Fmt.str "%s: parallel(P=%d) = naive" msg p)
        reference
        (Dc_par.Par.with_seq_cutoff 1 (fun () ->
             Seminaive.query ~domains:p program edb pred)))
    [ 1; 4 ];
  (* magic with an all-free query must still return everything *)
  (match
     Magic.answer program edb
       (atom pred (List.init arity (fun k -> Var (Fmt.str "Q%d" k))))
   with
  | answers ->
    Alcotest.check facts_testable (msg ^ ": magic = naive") reference answers
  | exception Magic.Unsupported _ -> ());
  reference

(* bound goal: first argument fixed to a value present in the answers *)
let check_bound_goal_engines ~msg program edb pred start reference =
  let goal = atom pred [ Const start; var "Y" ] in
  let expected =
    TS.filter (fun t -> Value.equal (Tuple.get t 0) start) reference
  in
  Alcotest.check facts_testable (msg ^ ": tabled = restricted naive") expected
    (Tabled.solve program edb goal);
  Alcotest.check facts_testable (msg ^ ": magic = restricted naive") expected
    (Magic.answer program edb goal)

(* ------------------------------------------------------------------ *)
(* Seeded case generation *)

type case = {
  case_name : string;  (** shape + generator parameters, for messages *)
  case_program : program;
  case_edb : Facts.t;
  case_pred : string;
  case_arity : int;
}

let graph_case rng name program =
  let seed = Rng.int rng 1_000_000 in
  let nodes = 4 + Rng.int rng 13 in
  let edges = nodes + Rng.int rng 41 in
  {
    case_name = Fmt.str "%s(graph seed=%d nodes=%d edges=%d)" name seed nodes edges;
    case_program = program;
    case_edb = edb_of_relation "edge" (Graph_gen.random_graph ~seed ~nodes ~edges);
    case_pred = "path";
    case_arity = 2;
  }

let sg_case rng =
  (* independent random up/flat/down graphs: exercises sg off the balanced
     tree the examples use *)
  let seed k = Rng.int rng 1_000_000 + k in
  let nodes = 4 + Rng.int rng 9 in
  let g s = Graph_gen.random_graph ~seed:s ~nodes ~edges:(nodes + Rng.int rng 11) in
  let s1 = seed 0 and s2 = seed 1 and s3 = seed 2 in
  let edb =
    Facts.of_relation "up" (g s1)
      (Facts.of_relation "flat" (g s2)
         (Facts.of_relation "down" (g s3) (Facts.empty ())))
  in
  {
    case_name = Fmt.str "sg(seeds=%d,%d,%d nodes=%d)" s1 s2 s3 nodes;
    case_program = sg_program;
    case_edb = edb;
    case_pred = "sg";
    case_arity = 2;
  }

let mutual_case rng =
  let seed = Rng.int rng 1_000_000 in
  let nodes = 4 + Rng.int rng 9 in
  let edges = nodes + Rng.int rng 21 in
  let edb =
    Facts.add
      (edb_of_relation "edge" (Graph_gen.random_graph ~seed ~nodes ~edges))
      "start"
      (Tuple.make1 (Graph_gen.node (Rng.int rng nodes)))
  in
  {
    case_name = Fmt.str "mutual(graph seed=%d nodes=%d edges=%d)" seed nodes edges;
    case_program = mutual_program;
    case_edb = edb;
    case_pred = (if Rng.bool rng 0.5 then "even" else "odd");
    case_arity = 1;
  }

let bom_case rng =
  let seed = Rng.int rng 1_000_000 in
  let levels = 2 + Rng.int rng 3 in
  let width = 2 + Rng.int rng 4 in
  let uses = 1 + Rng.int rng width in
  let uses = min uses width in
  let edb =
    edb_of_relation "contains" (Bom_gen.hierarchy ~seed ~levels ~width ~uses)
  in
  {
    case_name =
      Fmt.str "bom(seed=%d levels=%d width=%d uses=%d)" seed levels width uses;
    case_program = bom_program;
    case_edb = edb;
    case_pred = "reach";
    case_arity = 2;
  }

let shapes =
  [
    (fun rng -> graph_case rng "tc_linear" tc_linear);
    (fun rng -> graph_case rng "tc_left_linear" tc_left_linear);
    (fun rng -> graph_case rng "tc_nonlinear" tc_nonlinear);
    sg_case;
    mutual_case;
    bom_case;
  ]

let case_of_seed seed =
  let rng = Rng.create seed in
  (Rng.pick rng shapes) rng

(* Run the full 5-way agreement check for one seed.  Raises an Alcotest
   check failure whose message includes both the seed and the generated
   case description. *)
let check_seed seed =
  let c = case_of_seed seed in
  let msg = Fmt.str "seed %d: %s" seed c.case_name in
  let reference =
    check_engines_agree ~msg c.case_program c.case_edb c.case_pred c.case_arity
  in
  if c.case_arity = 2 then
    match TS.choose_opt reference with
    | Some t ->
      check_bound_goal_engines ~msg c.case_program c.case_edb c.case_pred
        (Tuple.get t 0) reference
    | None -> ()

(* ------------------------------------------------------------------ *)
(* Aggregate and negation workloads (PR 10): the engine's grouped
   accumulators and stratified NOT against independent brute-force
   recomputes in plain OCaml.  Aggregates fold the DISTINCT set of raw
   head tuples (the LDL++ convention), and each oracle mirrors exactly
   that set semantics — so a divergence means the engine, not the
   convention.  Seeds ride in every message. *)

module Agg = Dc_agg.Agg

let int_of = function Value.Int n -> n | v -> Alcotest.failf "not an int: %a" Value.pp v

let weighted_edges rel =
  Relation.fold
    (fun t acc -> (Tuple.get t 0, Tuple.get t 1, int_of (Tuple.get t 2)) :: acc)
    rel []

(* sp(S,D,W) :- edge(S,D,W).
   sp(S,D,W1+W2) :- sp(S,M,W1), edge(M,D,W2).      [MIN over (S,D)] *)
let sp_agg_program =
  [
    rule
      (atom "sp" [ var "S"; var "D"; var "W" ])
      [ Pos (atom "edge" [ var "S"; var "D"; var "W" ]) ];
    rule
      (atom "sp"
         [ var "S"; var "D"; Binop (Dc_calculus.Ast.Add, var "W1", var "W2") ])
      [
        Pos (atom "sp" [ var "S"; var "M"; var "W1" ]);
        Pos (atom "edge" [ var "M"; var "D"; var "W2" ]);
      ];
  ]

let sp_aggs = [ ("sp", { Agg.group = [ 0; 1 ]; value = 2; op = Agg.Min }) ]

(* Bellman-Ford-style relaxation to a fixpoint; nothing shared with the
   semi-naive per-group-bound machinery under test. *)
let shortest_paths_oracle edges =
  let dist = Hashtbl.create 64 in
  let better k w =
    match Hashtbl.find_opt dist k with
    | Some w' when w' <= w -> false
    | _ ->
      Hashtbl.replace dist k w;
      true
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter (fun (s, d, w) -> if better (s, d) w then changed := true) edges;
    Hashtbl.iter
      (fun (s, m) w ->
        List.iter
          (fun (m', d, w2) ->
            if Value.equal m m' && better (s, d) (w + w2) then changed := true)
          edges)
      (Hashtbl.copy dist)
  done;
  Hashtbl.fold
    (fun (s, d) w acc -> TS.add (Tuple.of_list [ s; d; Value.Int w ]) acc)
    dist TS.empty

let check_shortest_path_seed seed =
  let rng = Rng.create seed in
  let gseed = Rng.int rng 1_000_000 in
  let nodes = 4 + Rng.int rng 13 in
  let edges = nodes + Rng.int rng 41 in
  let rel = Graph_gen.random_weighted_graph ~seed:gseed ~nodes ~edges ~max_w:9 in
  let msg =
    Fmt.str "seed %d: shortest(graph seed=%d nodes=%d edges=%d)" seed gseed
      nodes edges
  in
  let expected = shortest_paths_oracle (weighted_edges rel) in
  let edb = edb_of_relation "edge" rel in
  Alcotest.check facts_testable (msg ^ ": seminaive MIN = Bellman-Ford")
    expected
    (Seminaive.query ~aggs:sp_aggs sp_agg_program edb "sp");
  (* the parallel driver must fall back to the sequential path for
     aggregated strata and still agree *)
  Alcotest.check facts_testable (msg ^ ": parallel(P=4) = Bellman-Ford")
    expected
    (Dc_par.Par.with_seq_cutoff 1 (fun () ->
         Seminaive.query ~domains:4 ~aggs:sp_aggs sp_agg_program edb "sp"))

(* expand(A,C,Q)     :- contains(A,C,Q).
   expand(A,C,Q1*Q2) :- expand(A,B,Q1), contains(B,C,Q2).
   total(A,C,Q*P)    :- expand(A,C,Q), price(C,P).   [SUM over (A), C discriminates] *)
let bom_agg_program =
  [
    rule
      (atom "expand" [ var "A"; var "C"; var "Q" ])
      [ Pos (atom "contains" [ var "A"; var "C"; var "Q" ]) ];
    rule
      (atom "expand"
         [ var "A"; var "C"; Binop (Dc_calculus.Ast.Mul, var "Q1", var "Q2") ])
      [
        Pos (atom "expand" [ var "A"; var "B"; var "Q1" ]);
        Pos (atom "contains" [ var "B"; var "C"; var "Q2" ]);
      ];
    rule
      (atom "total"
         [ var "A"; var "C"; Binop (Dc_calculus.Ast.Mul, var "Q", var "P") ])
      [
        Pos (atom "expand" [ var "A"; var "C"; var "Q" ]);
        Pos (atom "price" [ var "C"; var "P" ]);
      ];
  ]

let bom_aggs = [ ("total", { Agg.group = [ 0 ]; value = 2; op = Agg.Sum }) ]

(* The brute force mirrors the engine's set semantics stage by stage:
   the expansion closure is a SET of (assembly, part, path-quantity)
   triples (equal quantities along different paths collapse), and the
   rollup sums the DISTINCT (assembly, part, quantity * price) raws. *)
let bom_rollup_oracle contains prices =
  let triples = Hashtbl.create 256 in
  List.iter (fun t -> Hashtbl.replace triples t ()) contains;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun (a, b, q1) () ->
        List.iter
          (fun (b', c, q2) ->
            let t = (a, c, q1 * q2) in
            if Value.equal b b' && not (Hashtbl.mem triples t) then begin
              Hashtbl.replace triples t ();
              changed := true
            end)
          contains)
      (Hashtbl.copy triples)
  done;
  let raws = Hashtbl.create 256 in
  Hashtbl.iter
    (fun (a, c, q) () ->
      match List.assoc_opt c prices with
      | Some p -> Hashtbl.replace raws (a, c, q * p) ()
      | None -> ())
    triples;
  let sums = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (a, _, v) () ->
      Hashtbl.replace sums a
        (v + Option.value ~default:0 (Hashtbl.find_opt sums a)))
    raws;
  Hashtbl.fold
    (fun a s acc -> TS.add (Tuple.of_list [ a; Value.Int s ]) acc)
    sums TS.empty

let check_bom_rollup_seed seed =
  let rng = Rng.create seed in
  let gseed = Rng.int rng 1_000_000 in
  let levels = 2 + Rng.int rng 3 in
  let width = 2 + Rng.int rng 4 in
  let uses = 1 + Rng.int rng width in
  let contains_rel = Bom_gen.hierarchy ~seed:gseed ~levels ~width ~uses in
  let contains = weighted_edges contains_rel in
  (* every part gets a deterministic unit price *)
  let parts =
    List.sort_uniq compare
      (List.concat_map (fun (a, c, _) -> [ a; c ]) contains)
  in
  let prices = List.map (fun p -> (p, 1 + Rng.int rng 9)) parts in
  let msg =
    Fmt.str "seed %d: rollup(bom seed=%d levels=%d width=%d uses=%d)" seed
      gseed levels width uses
  in
  let expected = bom_rollup_oracle contains prices in
  let edb =
    Facts.add_set
      (edb_of_relation "contains" contains_rel)
      "price"
      (List.fold_left
         (fun acc (p, c) -> TS.add (Tuple.of_list [ p; Value.Int c ]) acc)
         TS.empty prices)
  in
  Alcotest.check facts_testable (msg ^ ": seminaive SUM = brute force")
    expected
    (Seminaive.query ~aggs:bom_aggs bom_agg_program edb "total")

(* path = transitive closure; unreach = the complement over the node
   domain, through stratified NOT; lonely counts each node's unreachable
   peers — an aggregate stratum ABOVE the negation stratum. *)
let negation_program =
  tc_linear
  @ [
      rule
        (atom "unreach" [ var "X"; var "Y" ])
        [
          Pos (atom "node" [ var "X" ]);
          Pos (atom "node" [ var "Y" ]);
          Neg (atom "path" [ var "X"; var "Y" ]);
        ];
      rule
        (atom "lonely" [ var "X"; var "Y" ])
        [ Pos (atom "unreach" [ var "X"; var "Y" ]) ];
    ]

let negation_aggs =
  [ ("lonely", { Agg.group = [ 0 ]; value = 1; op = Agg.Count }) ]

let check_negation_seed seed =
  let rng = Rng.create seed in
  let gseed = Rng.int rng 1_000_000 in
  let nodes = 4 + Rng.int rng 9 in
  let edges = nodes + Rng.int rng 21 in
  let rel = Graph_gen.random_graph ~seed:gseed ~nodes ~edges in
  let msg =
    Fmt.str "seed %d: negation(graph seed=%d nodes=%d edges=%d)" seed gseed
      nodes edges
  in
  (* reachability by iterating the edge list; complement over the nodes *)
  let reach = Hashtbl.create 64 in
  let pairs = ref [] in
  Relation.iter
    (fun t -> pairs := (Tuple.get t 0, Tuple.get t 1) :: !pairs)
    rel;
  List.iter (fun p -> Hashtbl.replace reach p ()) !pairs;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun (a, b) () ->
        List.iter
          (fun (b', c) ->
            if Value.equal b b' && not (Hashtbl.mem reach (a, c)) then begin
              Hashtbl.replace reach (a, c) ();
              changed := true
            end)
          !pairs)
      (Hashtbl.copy reach)
  done;
  let node_vals = List.init nodes Graph_gen.node in
  let unreach_expected =
    List.fold_left
      (fun acc x ->
        List.fold_left
          (fun acc y ->
            if Hashtbl.mem reach (x, y) then acc
            else TS.add (Tuple.of_list [ x; y ]) acc)
          acc node_vals)
      TS.empty node_vals
  in
  let lonely_expected =
    List.fold_left
      (fun acc x ->
        let n =
          List.length
            (List.filter
               (fun y -> not (Hashtbl.mem reach (x, y)))
               node_vals)
        in
        if n = 0 then acc else TS.add (Tuple.of_list [ x; Value.Int n ]) acc)
      TS.empty node_vals
  in
  let edb =
    Facts.add_set
      (edb_of_relation "edge" rel)
      "node"
      (List.fold_left
         (fun acc v -> TS.add (Tuple.make1 v) acc)
         TS.empty node_vals)
  in
  Alcotest.check facts_testable (msg ^ ": stratified NOT = complement")
    unreach_expected
    (Seminaive.query ~aggs:negation_aggs negation_program edb "unreach");
  Alcotest.check facts_testable (msg ^ ": COUNT above NOT = brute force")
    lonely_expected
    (Seminaive.query ~aggs:negation_aggs negation_program edb "lonely")

(* One seeded pass over all three; the CI aggregate-oracle step runs
   this under DC_DOMAINS=4. *)
let check_agg_seed seed =
  check_shortest_path_seed seed;
  check_bom_rollup_seed seed;
  check_negation_seed seed
