(* Differential update streams for the live-view subsystem (lib/ivm).

   Each workload (transitive closure, same-generation, mutual recursion,
   bill-of-materials) is set up through [Translate.to_constructors] over
   the oracle program shapes, materialized with [Ivm.materialize], and
   then driven by a seeded random stream of interleaved INSERT/DELETE
   steps.  After every step the incrementally maintained extent must
   equal a from-scratch semi-naive refixpoint of the original rules over
   the mutated base relations.  Every failure message carries the seed,
   so any divergence reproduces deterministically.

   Also here: abort atomicity of maintenance under injected
   [Guard.Exhausted] faults (the update and the view roll back to the
   pre-update snapshot), the Facts deletion regression (cached indexes
   must forget removed tuples), and the surface-DELETE stale-read
   regression (maintenance off must not serve a stale extent). *)

open Dc_relation
open Dc_datalog
module Ast = Dc_calculus.Ast
module Database = Dc_core.Database
module Ivm = Dc_ivm.Ivm
module Guard = Dc_guard.Guard
module Obs = Dc_obs.Obs
module Rng = Dc_workload.Rng
module Graph_gen = Dc_workload.Graph_gen
module Bom_gen = Dc_workload.Bom_gen
module TS = Facts.TS

let ts_of_relation rel = Relation.fold TS.add rel TS.empty
let unary_schema = Schema.make [ ("x", Value.TStr) ]

(* ------------------------------------------------------------------ *)
(* Workloads *)

type workload = {
  w_name : string;
  w_program : Syntax.program; (* oracle rules, original predicate names *)
  w_pred : string; (* root IDB predicate = constructor name *)
  w_edb : (string * Schema.t) list; (* updatable base relations *)
  w_idb : (string * Schema.t) list;
  w_init : Rng.t -> (string * Relation.t) list;
  w_random : Rng.t -> string -> Tuple.t; (* a random tuple for a base *)
}

let nodes = 10
let rand_node rng = Graph_gen.node (Rng.int rng nodes)
let rand_pair rng _ = Tuple.of_list [ rand_node rng; rand_node rng ]

let graph_workload =
  {
    w_name = "graph";
    w_program = Oracle.tc_nonlinear;
    w_pred = "path";
    w_edb = [ ("edge", Graph_gen.edge_schema) ];
    w_idb = [ ("path", Graph_gen.edge_schema) ];
    w_init =
      (fun rng ->
        let seed = Rng.int rng 1_000_000 in
        [ ("edge", Graph_gen.random_graph ~seed ~nodes ~edges:(2 * nodes)) ]);
    w_random = rand_pair;
  }

let sg_workload =
  {
    w_name = "sg";
    w_program = Oracle.sg_program;
    w_pred = "sg";
    w_edb =
      [
        ("up", Graph_gen.edge_schema);
        ("flat", Graph_gen.edge_schema);
        ("down", Graph_gen.edge_schema);
      ];
    w_idb = [ ("sg", Graph_gen.edge_schema) ];
    w_init =
      (fun rng ->
        let g () =
          Graph_gen.random_graph ~seed:(Rng.int rng 1_000_000) ~nodes
            ~edges:(nodes + Rng.int rng 6)
        in
        [ ("up", g ()); ("flat", g ()); ("down", g ()) ]);
    w_random = rand_pair;
  }

let mutual_workload =
  {
    w_name = "mutual";
    w_program = Oracle.mutual_program;
    w_pred = "even";
    w_edb = [ ("edge", Graph_gen.edge_schema); ("start", unary_schema) ];
    w_idb = [ ("even", unary_schema); ("odd", unary_schema) ];
    w_init =
      (fun rng ->
        let seed = Rng.int rng 1_000_000 in
        [
          ("edge", Graph_gen.random_graph ~seed ~nodes ~edges:(2 * nodes));
          ( "start",
            Relation.of_list unary_schema [ Tuple.make1 (rand_node rng) ] );
        ]);
    w_random =
      (fun rng pred ->
        if String.equal pred "start" then Tuple.make1 (rand_node rng)
        else rand_pair rng pred);
  }

let parts = 9

let bom_workload =
  {
    w_name = "bom";
    w_program = Oracle.bom_program;
    w_pred = "reach";
    w_edb = [ ("contains", Bom_gen.contains_schema) ];
    w_idb = [ ("reach", Graph_gen.edge_schema) ];
    w_init =
      (fun rng ->
        [
          ( "contains",
            Bom_gen.hierarchy ~seed:(Rng.int rng 1_000_000) ~levels:3 ~width:3
              ~uses:2 );
        ]);
    w_random =
      (fun rng _ ->
        Tuple.of_list
          [
            Bom_gen.part (Rng.int rng parts);
            Bom_gen.part (Rng.int rng parts);
            Value.Int (1 + Rng.int rng 4);
          ]);
  }

let workloads = [ graph_workload; sg_workload; mutual_workload; bom_workload ]

(* ------------------------------------------------------------------ *)
(* Setup and the differential step driver *)

let setup w init =
  let db = Database.create () in
  List.iter (fun (n, s) -> Database.declare db n s) w.w_edb;
  List.iter (fun (n, rel) -> Database.set db n rel) init;
  let schema_of p =
    match List.assoc_opt p (w.w_edb @ w.w_idb) with
    | Some s -> s
    | None -> Alcotest.failf "no schema for predicate %s" p
  in
  let defs, bottoms = Translate.to_constructors schema_of w.w_program in
  List.iter (fun (n, s) -> Database.declare db n s) bottoms;
  Database.define_constructors db defs;
  let view =
    Ivm.materialize db ~constructor:w.w_pred
      ~base:("__bottom_" ^ w.w_pred)
      ~args:[]
  in
  (db, view)

(* The independent oracle: semi-naive over the ORIGINAL rules and names,
   against the base relations as the database currently holds them. *)
let oracle db w =
  let edb =
    List.fold_left
      (fun acc (p, _) -> Facts.of_relation p (Database.get db p) acc)
      (Facts.empty ()) w.w_edb
  in
  Seminaive.query w.w_program edb w.w_pred

type step = {
  st_op : string; (* "INSERT" | "DELETE" *)
  st_pred : string;
  st_tuple : Tuple.t;
}

(* Pick and apply one random step; returns its description.  Deletions
   target existing tuples, so nearly every step is a real change. *)
let random_step rng db w =
  let pred, _ = Rng.pick rng w.w_edb in
  let rel = Database.get db pred in
  if Relation.cardinal rel > 0 && Rng.bool rng 0.45 then begin
    let ts = Relation.to_list rel in
    let t = List.nth ts (Rng.int rng (List.length ts)) in
    Database.delete db pred t;
    { st_op = "DELETE"; st_pred = pred; st_tuple = t }
  end
  else begin
    let t = w.w_random rng pred in
    Database.insert db pred t;
    { st_op = "INSERT"; st_pred = pred; st_tuple = t }
  end

let check_extent ~seed w view expected step i =
  let got = ts_of_relation (Ivm.value view) in
  if not (TS.equal expected got) then
    Alcotest.failf
      "seed %d %s: step %d (%s %s %a): maintained extent diverged: %d \
       maintained vs %d refixpoint tuples"
      seed w.w_name i step.st_op step.st_pred Tuple.pp step.st_tuple
      (TS.cardinal got) (TS.cardinal expected)

let run_stream ~seed ~steps w =
  let rng = Rng.create seed in
  let db, view = setup w (w.w_init rng) in
  check_extent ~seed w view (oracle db w)
    { st_op = "MATERIALIZE"; st_pred = w.w_pred; st_tuple = Tuple.of_list [] }
    0;
  for i = 1 to steps do
    let step = random_step rng db w in
    check_extent ~seed w view (oracle db w) step i
  done

(* >= 1000 interleaved INSERT/DELETE steps per workload *)
let test_update_stream w () = run_stream ~seed:20260806 ~steps:1000 w

(* qcheck variant: short streams over random seeds *)
let prop_stream w =
  QCheck.Test.make
    ~name:(Fmt.str "ivm %s stream = refixpoint" w.w_name)
    ~count:12 QCheck.small_nat
    (fun seed ->
      run_stream ~seed ~steps:25 w;
      true)

(* ------------------------------------------------------------------ *)
(* Abort atomicity under injected faults *)

let with_failpoints f =
  Guard.Failpoint.reset ();
  Fun.protect ~finally:Guard.Failpoint.reset f

(* Arm a maintenance-pipeline failpoint, apply a real update, and verify
   the abort left both the base relation and the maintained extent at
   the pre-update snapshot — then that the stream keeps maintaining
   correctly afterwards. *)
let test_abort_atomicity w () =
  with_failpoints @@ fun () ->
  let seed = 77_2026 in
  let rng = Rng.create seed in
  let db, view = setup w (w.w_init rng) in
  for i = 1 to 40 do
    if i mod 4 = 0 then begin
      (* inject: alternate between the commit point and mid-propagation *)
      let site = if i mod 8 = 0 then "ivm.commit" else "ivm.round" in
      let pred, _ = Rng.pick rng w.w_edb in
      let before_base = ts_of_relation (Database.get db pred) in
      let before_view = ts_of_relation (Ivm.value view) in
      let rel = Database.get db pred in
      let apply =
        if Relation.cardinal rel > 0 && Rng.bool rng 0.5 then begin
          let ts = Relation.to_list rel in
          let t = List.nth ts (Rng.int rng (List.length ts)) in
          fun () -> Database.delete db pred t
        end
        else begin
          (* a guaranteed-fresh tuple, so the step is a real change and
             the maintenance pipeline definitely runs *)
          let rec fresh () =
            let t = w.w_random rng pred in
            if Relation.mem t rel then fresh () else t
          in
          let t = fresh () in
          fun () -> Database.insert db pred t
        end
      in
      Guard.Failpoint.arm site 1;
      (match apply () with
      | () ->
        if !Guard.Failpoint.armed then
          Alcotest.failf "seed %d %s: step %d: %s never hit" seed w.w_name i
            site;
        Guard.Failpoint.reset ()
      | exception Guard.Exhausted (Guard.Fault_injected s, _) ->
        Alcotest.(check string)
          (Fmt.str "seed %d %s: step %d: fault site" seed w.w_name i)
          site s;
        let after_base = ts_of_relation (Database.get db pred) in
        if not (TS.equal before_base after_base) then
          Alcotest.failf
            "seed %d %s: step %d: aborted %s left the base relation %s \
             changed (%d -> %d tuples)"
            seed w.w_name i site pred (TS.cardinal before_base)
            (TS.cardinal after_base);
        let after_view = ts_of_relation (Ivm.value view) in
        if not (TS.equal before_view after_view) then
          Alcotest.failf
            "seed %d %s: step %d: aborted %s left the maintained extent \
             changed (%d -> %d tuples)"
            seed w.w_name i site (TS.cardinal before_view)
            (TS.cardinal after_view));
      Guard.Failpoint.reset ()
    end
    else begin
      let step = random_step rng db w in
      check_extent ~seed w view (oracle db w) step i
    end
  done

(* ------------------------------------------------------------------ *)
(* Facts deletion regression (the delta-index maintenance fix) *)

let t2 a b = Tuple.of_list [ Value.str a; Value.str b ]

let test_facts_remove_indexes () =
  let store =
    Facts.of_list
      [ ("e", t2 "a" "b"); ("e", t2 "a" "c"); ("e", t2 "b" "c") ]
  in
  (* force an index on position 0, then delete through the owning store *)
  let probe st key =
    List.length (Facts.lookup st "e" [ 0 ] (Tuple.make1 (Value.str key)))
  in
  Alcotest.(check int) "warm index: a" 2 (probe store "a");
  let store' = Facts.remove store "e" (t2 "a" "c") in
  Alcotest.(check int) "after remove: a" 1 (probe store' "a");
  Alcotest.(check bool) "membership gone" false (Facts.mem store' "e" (t2 "a" "c"));
  (* the older snapshot still sees the tuple (persistent value) *)
  Alcotest.(check int) "old snapshot unchanged" 2 (probe store "a");
  (* set removal, including keys that vanish entirely *)
  let store'' = Facts.remove_set store' "e" (TS.of_list [ t2 "a" "b"; t2 "b" "c" ]) in
  Alcotest.(check int) "after remove_set: a" 0 (probe store'' "a");
  Alcotest.(check int) "after remove_set: b" 0 (probe store'' "b");
  Alcotest.(check int) "cardinal" 0 (Facts.cardinal store'' "e");
  (* removing an absent tuple is a no-op *)
  let store3 = Facts.remove store'' "e" (t2 "z" "z") in
  Alcotest.(check int) "no-op remove" 0 (Facts.cardinal store3 "e")

(* ------------------------------------------------------------------ *)
(* Surface wiring: MATERIALIZE / SET MAINTAIN / EXPLAIN ANALYZE DELETE *)

let tc_surface =
  {|
TYPE node = STRING;
TYPE edgerel = RELATION a, b OF RECORD a, b: node END;
VAR Edge: edgerel;
CONSTRUCTOR tc FOR Rel: edgerel (): edgerel;
BEGIN EACH e IN Rel: TRUE,
      <e.a, p.b> OF EACH e IN Rel, EACH p IN Rel{tc()}: e.b = p.a
END tc;
INSERT Edge VALUES ("a", "b"), ("b", "c"), ("c", "d");
MATERIALIZE Edge{tc()};
|}

let run_more db src = snd (Dc_lang.Elaborate.run_string ~db src)

let contains_s s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

let query_tc db =
  ts_of_relation (Database.query db (Ast.Construct (Ast.Rel "Edge", "tc", [])))

(* surface DELETE drives maintenance end-to-end *)
let test_surface_materialize_output () =
  let _db, out = Dc_lang.Elaborate.run_string tc_surface in
  Alcotest.(check bool)
    "materialize reported" true
    (contains_s out "view tc__Edge")

let test_surface_delete () =
  let db, _ = Dc_lang.Elaborate.run_string tc_surface in
  Alcotest.(check int) "initial extent" 6 (TS.cardinal (query_tc db));
  let _ = run_more db {|DELETE Edge VALUES ("b", "c");|} in
  Alcotest.check
    (Alcotest.testable (Fmt.Dump.list Tuple.pp) (List.equal Tuple.equal))
    "after DELETE"
    [ t2 "a" "b"; t2 "c" "d" ]
    (TS.elements (query_tc db))

(* stale-read regression: with maintenance off, an update must not leave
   the old extent being served *)
let test_stale_read () =
  let db, _ = Dc_lang.Elaborate.run_string tc_surface in
  let _ = run_more db {|SET MAINTAIN OFF;
DELETE Edge VALUES ("b", "c");|} in
  Alcotest.(check int) "refreshed, not stale" 2 (TS.cardinal (query_tc db));
  (* and turning maintenance back on resumes incremental updates *)
  let _ = run_more db {|SET MAINTAIN ON;
INSERT Edge VALUES ("b", "c");|} in
  Alcotest.(check int) "maintained again" 6 (TS.cardinal (query_tc db))

(* EXPLAIN ANALYZE on an update prints the maintenance pipeline *)
let test_explain_analyze_update () =
  let db, _ = Dc_lang.Elaborate.run_string tc_surface in
  let out = run_more db {|EXPLAIN ANALYZE DELETE Edge VALUES ("b", "c");|} in
  List.iter
    (fun affix ->
      Alcotest.(check bool)
        (Fmt.str "report mentions %S" affix)
        true (contains_s out affix))
    [ "EXPLAIN ANALYZE DELETE Edge"; "view tc__Edge"; "overdelete"; "insert" ]

(* ------------------------------------------------------------------ *)
(* Live aggregate views under a long update stream (PR 10): three
   aggregate views over one weighted edge relation — SUM with a
   discriminator column, MIN (deletions of the group bound force the
   per-group rescan path), COUNT — maintained through 1000 interleaved
   INSERT/DELETE steps and compared after every step against plain OCaml
   folds over the base extent.  All three must get the incremental
   agg-counting plan, not a recompute fallback. *)

let agg_stream_src =
  {|TYPE wedge  = RELATION src, dst OF RECORD src, dst: STRING; w: INTEGER END;
    TYPE persrc = RELATION src OF RECORD src: STRING; v: INTEGER END;
    VAR E: wedge;
    CONSTRUCTOR total FOR Rel: wedge (): persrc;
    BEGIN <e.src, e.dst, SUM e.w> OF EACH e IN Rel: TRUE GROUP BY e.src
    END total;
    CONSTRUCTOR low FOR Rel: wedge (): persrc;
    BEGIN <e.src, MIN e.w> OF EACH e IN Rel: TRUE GROUP BY e.src
    END low;
    CONSTRUCTOR fan FOR Rel: wedge (): persrc;
    BEGIN <e.src, COUNT e.dst> OF EACH e IN Rel: TRUE GROUP BY e.src
    END fan;|}

(* the oracle: one pass over the base extent per aggregate *)
let agg_expected fold db =
  let groups = Hashtbl.create 16 in
  Relation.iter
    (fun t ->
      let s = Tuple.get t 0 in
      let w = match Tuple.get t 2 with Value.Int n -> n | _ -> assert false in
      Hashtbl.replace groups s (fold w (Hashtbl.find_opt groups s)))
    (Database.get db "E");
  Hashtbl.fold
    (fun s v acc -> TS.add (Tuple.of_list [ s; Value.Int v ]) acc)
    groups TS.empty

let sum_fold w = function Some a -> a + w | None -> w
let min_fold w = function Some a -> min a w | None -> w
let count_fold _ = function Some a -> a + 1 | None -> 1

let agg_nodes = 8

let test_agg_update_stream () =
  let seed = 20260808 in
  let rng = Rng.create seed in
  let db, _ = Dc_lang.Elaborate.run_string agg_stream_src in
  let views =
    List.map
      (fun (con, fold) ->
        let v = Ivm.materialize db ~constructor:con ~base:"E" ~args:[] in
        if not (String.length (Ivm.plan_kind v) >= 11
               && String.sub (Ivm.plan_kind v) 0 11 = "incremental") then
          Alcotest.failf "%s view got plan %S, expected incremental" con
            (Ivm.plan_kind v);
        (con, v, fold))
      [ ("total", sum_fold); ("low", min_fold); ("fan", count_fold) ]
  in
  let check i op =
    List.iter
      (fun (con, v, fold) ->
        let expected = agg_expected fold db in
        let got = ts_of_relation (Ivm.value v) in
        if not (TS.equal expected got) then
          Alcotest.failf
            "seed %d: step %d (%s): %s diverged: %d maintained vs %d oracle \
             tuples"
            seed i op con (TS.cardinal got) (TS.cardinal expected))
      views
  in
  check 0 "MATERIALIZE";
  for i = 1 to 1000 do
    let s = Rng.int rng agg_nodes and d = Rng.int rng agg_nodes in
    let key0 = Graph_gen.node s and key1 = Graph_gen.node d in
    let existing =
      Relation.fold
        (fun t acc ->
          if Value.equal (Tuple.get t 0) key0 && Value.equal (Tuple.get t 1) key1
          then Some t
          else acc)
        (Database.get db "E") None
    in
    let op =
      match existing with
      | Some t ->
        (* the key is taken: delete it — half the time reinserting with a
           fresh weight, so group bounds move in both directions *)
        Database.delete db "E" t;
        if Rng.bool rng 0.5 then begin
          let t' = Tuple.of_list [ key0; key1; Value.Int (1 + Rng.int rng 9) ] in
          Database.insert db "E" t';
          "REPLACE"
        end
        else "DELETE"
      | None ->
        Database.insert db "E"
          (Tuple.of_list [ key0; key1; Value.Int (1 + Rng.int rng 9) ]);
        "INSERT"
    in
    check i op
  done

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dc_ivm"
    [
      ( "differential streams",
        List.map
          (fun w ->
            Alcotest.test_case
              (Fmt.str "%s: 1000 steps" w.w_name)
              `Slow (test_update_stream w))
          workloads
        @ [
            Alcotest.test_case "aggregate views: 1000 steps" `Slow
              test_agg_update_stream;
          ] );
      ( "abort atomicity",
        List.map
          (fun w ->
            Alcotest.test_case w.w_name `Quick (test_abort_atomicity w))
          workloads );
      ( "facts deletion",
        [ Alcotest.test_case "cached indexes" `Quick test_facts_remove_indexes ] );
      ( "surface",
        [
          Alcotest.test_case "MATERIALIZE output" `Quick
            test_surface_materialize_output;
          Alcotest.test_case "DELETE maintains" `Quick test_surface_delete;
          Alcotest.test_case "stale read under MAINTAIN OFF" `Quick
            test_stale_read;
          Alcotest.test_case "EXPLAIN ANALYZE DELETE" `Quick
            test_explain_analyze_update;
        ] );
      ("properties", qcheck (List.map prop_stream workloads));
    ]
