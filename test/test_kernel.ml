(* Randomized oracle tests for the runtime access-path kernel:

   - indexes grown delta-incrementally ([Index.create]/[extend] batch by
     batch, and [Index_cache.advance] along a chain of growing relations)
     must answer every lookup exactly like an index freshly built on the
     final relation;
   - [Facts] stores extended through [add]/[add_set] must answer [lookup]
     like a store built in one shot;
   - relations built from interned values ([Value.str]) must be
     [Relation.equal] to the same relations built from raw [Value.Str]
     constructors, and interning must preserve compare/equal/hash.

   Each generator is driven by a fixed-seed [Random.State], so failures
   reproduce. *)

open Dc_relation
module Facts = Dc_datalog.Facts

let tuple_list_testable =
  let pp ppf ts = Fmt.pf ppf "[%a]" (Fmt.list ~sep:Fmt.comma Tuple.pp) ts
  and eq a b = List.equal Tuple.equal a b in
  Alcotest.testable pp eq

let sorted ts = List.sort Tuple.compare ts

(* A random relation of random arity 1-4 over small int/str domains, with
   enough collisions that index buckets hold several tuples. *)
let random_relation rng =
  let arity = 1 + Random.State.int rng 4 in
  let attrs =
    List.init arity (fun i ->
        (Printf.sprintf "a%d" i,
         if Random.State.bool rng then Value.TInt else Value.TStr))
  in
  let schema = Schema.make attrs in
  let cell ty =
    match ty with
    | Value.TInt -> Value.Int (Random.State.int rng 12)
    | _ -> Value.str (Printf.sprintf "v%d" (Random.State.int rng 12))
  in
  let n = Random.State.int rng 80 in
  let tuples =
    List.init n (fun _ ->
        Tuple.of_list (List.map (fun (_, ty) -> cell ty) attrs))
  in
  List.fold_left
    (fun r t -> if Relation.mem t r then r else Relation.add t r)
    (Relation.empty schema) tuples

let random_positions rng arity =
  List.filter (fun _ -> Random.State.bool rng) (List.init arity Fun.id)

(* Split a relation into a chain of growing prefixes r0 ⊆ r1 ⊆ ... ⊆ r. *)
let random_batches rng rel =
  let ts = Relation.to_list rel in
  let batches = ref [] and current = ref [] in
  List.iter
    (fun t ->
      current := t :: !current;
      if Random.State.int rng 4 = 0 then begin
        batches := List.rev !current :: !batches;
        current := []
      end)
    ts;
  if !current <> [] then batches := List.rev !current :: !batches;
  List.rev !batches

let check_same_lookups ~what fresh_rel positions lookup_incremental =
  let fresh = Index.build positions fresh_rel in
  (* every present key image, plus a key that is absent *)
  Relation.iter
    (fun t ->
      let key = Tuple.project t positions in
      Alcotest.check tuple_list_testable what
        (sorted (Index.lookup fresh key))
        (sorted (lookup_incremental key)))
    fresh_rel;
  let absent = Tuple.make1 (Value.Int max_int) in
  let absent =
    if List.length positions = 1 then absent
    else
      Tuple.of_list
        (List.init (List.length positions) (fun _ -> Value.Int max_int))
  in
  Alcotest.check tuple_list_testable (what ^ " absent key")
    (sorted (Index.lookup fresh absent))
    (sorted (lookup_incremental absent))

(* Oracle 1: Index.create + extend batch-by-batch = Index.build on the
   final relation. *)
let test_index_extend_oracle () =
  let rng = Random.State.make [| 0x5eed; 1 |] in
  for _ = 1 to 60 do
    let rel = random_relation rng in
    let arity = List.length (Schema.attr_names (Relation.schema rel)) in
    let positions = random_positions rng arity in
    let idx = Index.create positions in
    List.iter
      (fun batch -> List.iter (Index.add idx) batch)
      (random_batches rng rel);
    check_same_lookups ~what:"extend = build" rel positions
      (Index.lookup idx)
  done

(* Oracle 2: an index advanced through Index_cache along a chain of
   monotonically growing relations = one built fresh on the last link. *)
let test_index_cache_advance_oracle () =
  let rng = Random.State.make [| 0x5eed; 2 |] in
  for _ = 1 to 60 do
    let rel = random_relation rng in
    let schema = Relation.schema rel in
    let arity = List.length (Schema.attr_names schema) in
    let positions = random_positions rng arity in
    let cache = Index_cache.create () in
    let grown =
      List.fold_left
        (fun prev batch ->
          (* probe the cache at every link so entries stay warm, exactly
             like a fixpoint round touching its access paths *)
          ignore (Index_cache.get cache positions prev);
          let delta = Relation.of_list schema batch in
          let next = Relation.union prev delta in
          Index_cache.advance cache ~old_rel:prev
            ~delta:(Relation.diff delta prev) ~next;
          next)
        (Relation.empty schema) (random_batches rng rel)
    in
    Alcotest.check Alcotest.bool "chain rebuilt the input" true
      (Relation.equal grown rel);
    let idx = Index_cache.get cache positions grown in
    check_same_lookups ~what:"advance = build" rel positions
      (Index.lookup idx)
  done

(* Oracle 3: Facts stores grown with add/add_set answer lookups like a
   store built in one shot (both the owning tip and stale snapshots). *)
let test_facts_incremental_oracle () =
  let rng = Random.State.make [| 0x5eed; 3 |] in
  for _ = 1 to 40 do
    let rel = random_relation rng in
    let arity = List.length (Schema.attr_names (Relation.schema rel)) in
    let positions = random_positions rng arity in
    let batches = random_batches rng rel in
    let snapshots, tip =
      List.fold_left
        (fun (snaps, store) batch ->
          let store' =
            if Random.State.bool rng then
              Facts.add_set store "p" (Facts.TS.of_list batch)
            else List.fold_left (fun s t -> Facts.add s "p" t) store batch
          in
          (store' :: snaps, store'))
        ([], Facts.empty ()) batches
    in
    let oneshot =
      Facts.add_set (Facts.empty ()) "p"
        (Facts.TS.of_list (Relation.to_list rel))
    in
    let check oracle store t =
      let key = Tuple.project t positions in
      Alcotest.check tuple_list_testable "facts incremental = oneshot"
        (sorted (Facts.lookup oracle "p" positions key))
        (sorted (Facts.lookup store "p" positions key))
    in
    Relation.iter (check oneshot tip) rel;
    (* a stale snapshot answers for its own (smaller) contents *)
    match snapshots with
    | [] -> ()
    | _ :: _ ->
      let stale =
        List.nth snapshots (Random.State.int rng (List.length snapshots))
      in
      let stale_oneshot =
        Facts.add_set (Facts.empty ()) "p" (Facts.find stale "p")
      in
      Facts.TS.iter (check stale_oneshot stale) (Facts.find stale "p")
  done

(* Oracle 4: interned construction is observationally equal to raw
   construction. Strings are built at runtime so physical equality cannot
   hold by accident. *)
let test_intern_relation_oracle () =
  let rng = Random.State.make [| 0x5eed; 4 |] in
  let schema = Schema.make [ ("src", Value.TStr); ("dst", Value.TStr) ] in
  for _ = 1 to 100 do
    let n = 1 + Random.State.int rng 40 in
    let pairs =
      List.init n (fun _ ->
          (Random.State.int rng 15, Random.State.int rng 15))
    in
    let name i = "n" ^ string_of_int i in
    let interned =
      Relation.of_list schema
        (List.filter_map
           (fun (a, b) ->
             let t = Tuple.make2 (Value.str (name a)) (Value.str (name b)) in
             Some t)
           pairs
        |> List.sort_uniq Tuple.compare)
    in
    let raw =
      Relation.of_list schema
        (List.map
           (fun (a, b) ->
             Tuple.make2 (Value.Str (name a)) (Value.Str (name b)))
           pairs
        |> List.sort_uniq Tuple.compare)
    in
    Alcotest.check Alcotest.bool "interned = raw construction" true
      (Relation.equal interned raw);
    Alcotest.check Alcotest.bool "raw = interned construction" true
      (Relation.equal raw interned)
  done

(* Value-level laws under interning: compare/equal agree with the raw
   representation, equal values hash identically, [intern] is idempotent. *)
let test_intern_value_laws () =
  let rng = Random.State.make [| 0x5eed; 5 |] in
  for _ = 1 to 200 do
    let s1 = "k" ^ string_of_int (Random.State.int rng 30) in
    let s2 = "k" ^ string_of_int (Random.State.int rng 30) in
    let raw1 = Value.Str s1 and raw2 = Value.Str s2 in
    let int1 = Value.str s1 and int2 = Value.str s2 in
    Alcotest.check Alcotest.int "compare agrees"
      (compare (Value.compare raw1 raw2) 0)
      (compare (Value.compare int1 int2) 0);
    Alcotest.check Alcotest.bool "equal agrees"
      (Value.equal raw1 raw2) (Value.equal int1 int2);
    Alcotest.check Alcotest.bool "mixed equal agrees"
      (Value.equal raw1 raw2) (Value.equal raw1 int2);
    if Value.equal raw1 int1 then
      Alcotest.check Alcotest.int "equal values hash equal"
        (Value.hash raw1) (Value.hash int1);
    Alcotest.check Alcotest.bool "intern idempotent" true
      (Value.intern int1 == int1)
  done

let () =
  Alcotest.run "kernel"
    [
      ( "oracle",
        [
          Alcotest.test_case "index extend = fresh build" `Quick
            test_index_extend_oracle;
          Alcotest.test_case "index-cache advance = fresh build" `Quick
            test_index_cache_advance_oracle;
          Alcotest.test_case "facts incremental = one-shot" `Quick
            test_facts_incremental_oracle;
          Alcotest.test_case "interned relations = raw relations" `Quick
            test_intern_relation_oracle;
          Alcotest.test_case "value laws under interning" `Quick
            test_intern_value_laws;
        ] );
    ]
