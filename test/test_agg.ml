(* Tests for Dc_agg and the aggregate-aware semi-naive engine: recursive
   MIN with per-group bounds (shortest paths), stratified COUNT/SUM,
   stratification placement and rejection of recursion through exact
   aggregates. *)

open Dc_relation
open Dc_datalog
open Syntax
module Agg = Dc_agg.Agg

let i n = Value.Int n
let tuple_of l = Tuple.of_list (List.map i l)

let facts_of pred rows =
  Facts.of_list (List.map (fun r -> (pred, tuple_of r)) rows)

let set_testable =
  Alcotest.testable
    (fun ppf s -> Facts.TS.iter (Tuple.pp ppf) s)
    Facts.TS.equal

let set_of_rows rows =
  List.fold_left (fun s r -> Facts.TS.add (tuple_of r) s) Facts.TS.empty rows

(* ------------------------------------------------------------------ *)
(* Agg unit behavior *)

let min_spec = { Agg.group = [ 0; 1 ]; value = 2; op = Agg.Min }

let test_accumulate () =
  Alcotest.(check bool)
    "min keeps better" true
    (Agg.accumulate min_spec (Some (i 5)) (i 3) = Some (i 3));
  Alcotest.(check bool)
    "min subsumes worse" true
    (Agg.accumulate min_spec (Some (i 3)) (i 5) = Some (i 3));
  let count_spec = { Agg.group = [ 0 ]; value = 1; op = Agg.Count } in
  Alcotest.(check bool)
    "count increments" true
    (Agg.accumulate count_spec (Some (i 2)) (i 99) = Some (i 3))

let test_aggregate_reference () =
  (* duplicate raws count once (distinct-set semantics) *)
  let count_spec = { Agg.group = [ 0 ]; value = 1; op = Agg.Count } in
  let raws = List.map tuple_of [ [ 1; 7 ]; [ 1; 7 ]; [ 1; 8 ]; [ 2; 7 ] ] in
  let results = Agg.aggregate count_spec raws in
  Alcotest.(check bool)
    "distinct counting" true
    (List.sort Tuple.compare results
    = List.sort Tuple.compare (List.map tuple_of [ [ 1; 2 ]; [ 2; 1 ] ]))

let test_group_table_offer_displace () =
  let t = Agg.Group_table.create min_spec in
  Alcotest.(check bool)
    "first offer emits" true
    (Agg.Group_table.offer t (tuple_of [ 1; 2; 9 ]) = Some (tuple_of [ 1; 2; 9 ]));
  Alcotest.(check bool)
    "worse offer subsumed" true
    (Agg.Group_table.offer t (tuple_of [ 1; 2; 11 ]) = None);
  Alcotest.(check bool)
    "better offer displaces" true
    (Agg.Group_table.offer t (tuple_of [ 1; 2; 4 ]) = Some (tuple_of [ 1; 2; 4 ]));
  Alcotest.(check bool)
    "displaced drained" true
    (Agg.Group_table.drain_displaced t = [ tuple_of [ 1; 2; 9 ] ]);
  Alcotest.(check bool)
    "drain empties" true
    (Agg.Group_table.drain_displaced t = [])

let test_group_table_retract () =
  let spec = { Agg.group = [ 0 ]; value = 1; op = Agg.Sum } in
  let t = Agg.Group_table.create spec in
  ignore (Agg.Group_table.offer t (tuple_of [ 1; 10 ]));
  ignore (Agg.Group_table.offer t (tuple_of [ 1; 5 ]));
  Alcotest.(check bool)
    "sum after offers" true
    (Agg.Group_table.current t (tuple_of [ 1 ]) = Some (tuple_of [ 1; 15 ]));
  (match Agg.Group_table.retract t (tuple_of [ 1; 10 ]) with
  | Some (old_r, Some new_r) ->
    Alcotest.(check bool) "retract old" true (old_r = tuple_of [ 1; 15 ]);
    Alcotest.(check bool) "retract new" true (new_r = tuple_of [ 1; 5 ])
  | _ -> Alcotest.fail "retract did not update");
  match Agg.Group_table.retract t (tuple_of [ 1; 5 ]) with
  | Some (_, None) -> ()
  | _ -> Alcotest.fail "retract did not empty the group"

(* ------------------------------------------------------------------ *)
(* Recursive MIN: shortest paths via semi-naive with per-group bounds *)

(* sp(S,D,W) :- edge(S,D,W).
   sp(S,D,W1 + W2) :- sp(S,M,W1), edge(M,D,W2).   [MIN over (S,D)] *)
let sp_program =
  [
    rule
      (atom "sp" [ var "S"; var "D"; var "W" ])
      [ Pos (atom "edge" [ var "S"; var "D"; var "W" ]) ];
    rule
      (atom "sp"
         [ var "S"; var "D"; Binop (Dc_calculus.Ast.Add, var "W1", var "W2") ])
      [
        Pos (atom "sp" [ var "S"; var "M"; var "W1" ]);
        Pos (atom "edge" [ var "M"; var "D"; var "W2" ]);
      ];
  ]

let sp_aggs = [ ("sp", min_spec) ]

(* Bellman-Ford-style brute force over int-labelled edges. *)
let shortest_paths edges =
  let dist = Hashtbl.create 64 in
  let better k w =
    match Hashtbl.find_opt dist k with
    | Some w' when w' <= w -> false
    | _ ->
      Hashtbl.replace dist k w;
      true
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter (fun (s, d, w) -> if better (s, d) w then changed := true) edges;
    Hashtbl.iter
      (fun (s, m) w ->
        List.iter
          (fun (m', d, w2) ->
            if m' = m && better (s, d) (w + w2) then changed := true)
          edges)
      (Hashtbl.copy dist)
  done;
  Hashtbl.fold (fun (s, d) w acc -> [ s; d; w ] :: acc) dist []

let check_shortest edges =
  let result = Seminaive.run ~aggs:sp_aggs sp_program (facts_of "edge" edges) in
  let expect =
    set_of_rows (shortest_paths (List.map (fun r ->
        match r with
        | [ s; d; w ] -> (s, d, w)
        | _ -> assert false)
        edges))
  in
  Alcotest.check set_testable "shortest paths" expect (Facts.find result "sp")

let test_min_dag () =
  check_shortest
    [ [ 1; 2; 3 ]; [ 1; 3; 1 ]; [ 3; 2; 1 ]; [ 2; 4; 2 ]; [ 3; 4; 10 ] ]

let test_min_cycle () =
  (* positive-weight cycle: bounds stop improving, fixpoint terminates *)
  check_shortest [ [ 1; 2; 1 ]; [ 2; 3; 1 ]; [ 3; 1; 1 ]; [ 3; 4; 5 ] ]

let test_min_parallel_edges () =
  check_shortest [ [ 1; 2; 7 ]; [ 1; 2; 3 ]; [ 2; 3; 2 ]; [ 1; 3; 9 ] ]

(* ------------------------------------------------------------------ *)
(* Stratified COUNT and consumption from a higher stratum *)

(* deg(S, D) :- edge(S, D, W).            [COUNT over (S), value D]
   busy(S)  :- deg(S, C), C >= 2. *)
let deg_program =
  [
    rule
      (atom "deg" [ var "S"; var "D" ])
      [ Pos (atom "edge" [ var "S"; var "D"; var "W" ]) ];
    rule
      (atom "busy" [ var "S" ])
      [
        Pos (atom "deg" [ var "S"; var "C" ]);
        Test (Dc_calculus.Ast.Ge, var "C", cint 2);
      ];
  ]

let deg_aggs = [ ("deg", { Agg.group = [ 0 ]; value = 1; op = Agg.Count }) ]

let test_count_stratified () =
  let edges =
    [ [ 1; 2; 5 ]; [ 1; 3; 5 ]; [ 1; 3; 7 ]; [ 2; 3; 1 ]; [ 4; 1; 1 ] ]
  in
  let result = Seminaive.run ~aggs:deg_aggs deg_program (facts_of "edge" edges) in
  (* (1,3) appears with two weights but contributes once per distinct
     (S,D) raw tuple *)
  Alcotest.check set_testable "counts"
    (set_of_rows [ [ 1; 2 ]; [ 2; 1 ]; [ 4; 1 ] ])
    (Facts.find result "deg");
  Alcotest.check set_testable "busy consumes final counts"
    (set_of_rows [ [ 1 ] ])
    (Facts.find result "busy")

let test_count_strata_placement () =
  let strata = Stratify.strata ~aggs:deg_aggs deg_program in
  let s p = Stratify.SM.find p strata in
  Alcotest.(check bool)
    "busy strictly above deg" true
    (s "busy" > s "deg")

let test_minmax_share_stratum () =
  let strata = Stratify.strata ~aggs:sp_aggs sp_program in
  Alcotest.(check int) "sp in stratum 0" 0 (Stratify.SM.find "sp" strata)

(* recursion through COUNT must be rejected *)
let test_count_recursion_rejected () =
  let program =
    [
      rule
        (atom "c" [ var "X"; var "Y" ])
        [ Pos (atom "e" [ var "X"; var "Y" ]) ];
      rule
        (atom "c" [ var "X"; var "Y" ])
        [ Pos (atom "n" [ var "X"; var "Y" ]) ];
      rule
        (atom "n" [ var "X"; var "Y" ])
        [ Pos (atom "c" [ var "X"; var "Y" ]) ];
    ]
  in
  let aggs = [ ("c", { Agg.group = [ 0 ]; value = 1; op = Agg.Count }) ] in
  Alcotest.(check bool)
    "not stratifiable" true
    (match Stratify.strata ~aggs program with
    | _ -> false
    | exception Stratify.Not_stratifiable _ -> true)

(* MIN consumed by a plain predicate: plain consumer sits strictly above *)
let test_min_consumer_above () =
  let program =
    sp_program
    @ [
        rule
          (atom "reach" [ var "S"; var "D" ])
          [ Pos (atom "sp" [ var "S"; var "D"; var "W" ]) ];
      ]
  in
  let strata = Stratify.strata ~aggs:sp_aggs program in
  let s p = Stratify.SM.find p strata in
  Alcotest.(check bool) "reach above sp" true (s "reach" > s "sp");
  (* and evaluation is exact: reach = reachable pairs *)
  let edges = [ [ 1; 2; 1 ]; [ 2; 3; 1 ]; [ 3; 1; 1 ] ] in
  let result = Seminaive.run ~aggs:sp_aggs program (facts_of "edge" edges) in
  Alcotest.(check int)
    "reach pairs" 9
    (Facts.TS.cardinal (Facts.find result "reach"))

(* ------------------------------------------------------------------ *)
(* Seeded differential workloads (test/oracle.ml): recursive MIN vs
   Bellman-Ford, stratified SUM rollup vs a set-semantics brute force,
   stratified NOT (with a COUNT stratum above it) vs the complement.
   Any failure message carries the seed; reproduce with
   [Oracle.check_agg_seed <seed>].  CI reruns these under DC_DOMAINS=4
   so the ambient parallel fixpoint path is covered too. *)

let oracle_seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let oracle_cases name check =
  List.map
    (fun seed ->
      Alcotest.test_case (Fmt.str "%s seed %d" name seed) `Quick (fun () ->
          check seed))
    oracle_seeds

let () =
  Alcotest.run "agg"
    [
      ( "unit",
        [
          Alcotest.test_case "accumulate" `Quick test_accumulate;
          Alcotest.test_case "aggregate reference" `Quick
            test_aggregate_reference;
          Alcotest.test_case "group table offer/displace" `Quick
            test_group_table_offer_displace;
          Alcotest.test_case "group table retract" `Quick
            test_group_table_retract;
        ] );
      ( "seminaive",
        [
          Alcotest.test_case "shortest paths (dag)" `Quick test_min_dag;
          Alcotest.test_case "shortest paths (cycle)" `Quick test_min_cycle;
          Alcotest.test_case "shortest paths (parallel edges)" `Quick
            test_min_parallel_edges;
          Alcotest.test_case "stratified count" `Quick test_count_stratified;
        ] );
      ( "stratify",
        [
          Alcotest.test_case "count consumer above" `Quick
            test_count_strata_placement;
          Alcotest.test_case "min recursion shares stratum" `Quick
            test_minmax_share_stratum;
          Alcotest.test_case "count recursion rejected" `Quick
            test_count_recursion_rejected;
          Alcotest.test_case "min consumer above" `Quick
            test_min_consumer_above;
        ] );
      ( "oracle",
        oracle_cases "shortest path" Oracle.check_shortest_path_seed
        @ oracle_cases "bom rollup" Oracle.check_bom_rollup_seed
        @ oracle_cases "negation" Oracle.check_negation_seed );
    ]
