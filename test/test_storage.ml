(* Persistence: CSV value round-tripping and the atomic directory-level
   save (lib/relation/csv, lib/lang/storage).

   A qcheck property drives randomized string relations — arbitrary
   bytes, so commas, quotes, CR/LF, empty and whitespace-only fields all
   occur — through [Csv.save]/[Csv.load] and demands extent equality;
   deterministic units pin the named edge cases and the mixed-type
   column formats.  The storage units crash a [Storage.save] halfway
   through its relation files (the [storage.save] failpoint) and require
   the previous directory generation to remain loadable — the atomicity
   contract the WAL checkpoint writer also relies on. *)

open Dc_relation
module Database = Dc_core.Database
module Storage = Dc_lang.Storage
module Guard = Dc_guard.Guard

let rel_testable = Alcotest.testable Relation.pp Relation.equal

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let counter = ref 0

let fresh_path tag =
  incr counter;
  let p =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "dc_storage_test_%d_%s_%d" (Unix.getpid ()) tag !counter)
  in
  rm_rf p;
  rm_rf (p ^ ".old");
  rm_rf (p ^ ".tmp");
  p

(* ------------------------------------------------------------------ *)
(* CSV round-trips *)

let pair_schema = Schema.make [ ("a", Value.TStr); ("b", Value.TStr) ]
let single_schema = Schema.make [ ("a", Value.TStr) ]

let roundtrip schema rel =
  let path = fresh_path "csv" ^ ".csv" in
  Csv.save rel path;
  let back = Csv.load schema path in
  Sys.remove path;
  back

let test_csv_edge_cases () =
  let nasty =
    [
      ("plain", "field");
      ("comma, inside", "and another, one");
      ("a \"quoted\" field", "\"\"");
      ("line\nbreak", "crlf\r\nbreak");
      ("", "empty left");
      ("   ", "\t");
      ("trailing space ", " leading");
      ("unicode: héllo…", "bytes \xff\x00ok");
    ]
  in
  let rel =
    Relation.of_list pair_schema
      (List.map
         (fun (a, b) -> Tuple.of_list [ Value.str a; Value.str b ])
         nasty)
  in
  Alcotest.check rel_testable "nasty pairs survive" rel
    (roundtrip pair_schema rel);
  (* single column: empty and whitespace-only fields must not read back
     as skippable blank lines *)
  let rel1 =
    Relation.of_list single_schema
      (List.map
         (fun s -> Tuple.of_list [ Value.str s ])
         [ ""; " "; "\t"; "x" ])
  in
  Alcotest.check rel_testable "blank-ish singletons survive" rel1
    (roundtrip single_schema rel1)

let test_csv_mixed_types () =
  let schema =
    Schema.make
      [
        ("i", Value.TInt);
        ("s", Value.TStr);
        ("b", Value.TBool);
        ("f", Value.TFloat);
      ]
  in
  let row i s b f =
    Tuple.of_list [ Value.Int i; Value.str s; Value.Bool b; Value.Float f ]
  in
  let rel =
    Relation.of_list schema
      [
        row 0 "zero" true 0.;
        row (-42) "neg, comma" false (-1.5);
        row max_int "max" true 0.25;
        row min_int "min" false 1e9;
      ]
  in
  Alcotest.check rel_testable "mixed types survive" rel (roundtrip schema rel)

let test_csv_crlf_and_blanks () =
  let content = "a,b\r\nx,y\r\n\r\n\nu,v\n   \n" in
  let rel = Csv.of_string pair_schema content in
  let want =
    Relation.of_list pair_schema
      [
        Tuple.of_list [ Value.str "x"; Value.str "y" ];
        Tuple.of_list [ Value.str "u"; Value.str "v" ];
      ]
  in
  Alcotest.check rel_testable "crlf rows, blank lines skipped" want rel

let prop_csv_roundtrip =
  let field = QCheck.string_of QCheck.Gen.char in
  let arb =
    QCheck.list_of_size (QCheck.Gen.int_bound 30) (QCheck.pair field field)
  in
  QCheck.Test.make ~name:"csv save/load round-trips arbitrary byte strings"
    ~count:200 arb (fun pairs ->
      let rel =
        Relation.of_list pair_schema
          (List.map
             (fun (a, b) -> Tuple.of_list [ Value.str a; Value.str b ])
             pairs)
      in
      Relation.equal rel (roundtrip pair_schema rel))

(* ------------------------------------------------------------------ *)
(* Atomic directory-level save *)

let chain_rel n =
  Dc_workload.Graph_gen.chain n

let build_db () =
  let db = Database.create () in
  Database.declare db "edge" Dc_workload.Graph_gen.edge_schema;
  Database.declare db "other" Dc_workload.Graph_gen.edge_schema;
  Database.set db "edge" (chain_rel 4);
  Database.set db "other" (chain_rel 2);
  db

let check_loaded msg dir ~edge ~other =
  let back = Storage.load dir in
  Alcotest.check rel_testable (msg ^ ": edge") edge (Database.get back "edge");
  Alcotest.check rel_testable
    (msg ^ ": other")
    other
    (Database.get back "other")

let test_atomic_save_crash () =
  Guard.Failpoint.reset ();
  Fun.protect ~finally:Guard.Failpoint.reset @@ fun () ->
  let dir = fresh_path "atomic" in
  let db = build_db () in
  Storage.save db dir;
  check_loaded "first save" dir ~edge:(chain_rel 4) ~other:(chain_rel 2);
  (* mutate, then crash the next save after its first relation file:
     the directory must still load the previous generation *)
  Database.update_batch db [ ("edge", [], Relation.to_list (chain_rel 4)) ];
  Database.set db "edge" (chain_rel 6);
  Guard.Failpoint.arm "storage.save" 1;
  (match Storage.save db dir with
  | () -> Alcotest.fail "armed storage.save did not crash"
  | exception Guard.Exhausted (Guard.Fault_injected "storage.save", _) -> ());
  check_loaded "after crashed save" dir ~edge:(chain_rel 4)
    ~other:(chain_rel 2);
  (* and a later save recovers cleanly over the leftover temp dir *)
  Storage.save db dir;
  check_loaded "save after crash" dir ~edge:(chain_rel 6)
    ~other:(chain_rel 2);
  rm_rf dir

let test_save_overwrites_previous () =
  let dir = fresh_path "overwrite" in
  let db = build_db () in
  Storage.save db dir;
  Database.set db "other" (chain_rel 5);
  Storage.save db dir;
  check_loaded "second generation" dir ~edge:(chain_rel 4)
    ~other:(chain_rel 5);
  rm_rf dir

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dc_storage"
    [
      ( "csv",
        [
          Alcotest.test_case "edge cases" `Quick test_csv_edge_cases;
          Alcotest.test_case "mixed types" `Quick test_csv_mixed_types;
          Alcotest.test_case "crlf and blank lines" `Quick
            test_csv_crlf_and_blanks;
        ]
        @ qcheck [ prop_csv_roundtrip ] );
      ( "storage",
        [
          Alcotest.test_case "atomic save survives a crash" `Quick
            test_atomic_save_crash;
          Alcotest.test_case "save replaces the previous generation" `Quick
            test_save_overwrites_previous;
        ] );
    ]
