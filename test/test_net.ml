(* The wire protocol (lib/net), fuzzed and attacked.

   Pure layer: qcheck round-trips of every frame type over arbitrary
   payload bytes, and a decoder fuzz — arbitrary byte strings must
   either decode or raise [Codec.Corrupt], never anything else.  Framed
   transport: every strict prefix of a valid frame is a torn frame, and
   every single-byte corruption of one must be rejected by the CRC.

   Live layer: a real TCP listener over a served database.  The client
   round-trips statements, queries, snapshot info, metrics, and the
   error taxonomy; adversarial peers (garbage preamble, oversized
   length claim, truncated frame, CRC corruption, mid-frame stall,
   random byte blobs) must each earn a structured [Err]/disconnect
   while the server keeps serving well-formed clients — in particular a
   stalled hostile connection must not delay the writer thread. *)

open Dc_relation
module Codec = Dc_wal.Codec
module Wire = Dc_net.Wire
module Net = Dc_net.Net
module Database = Dc_core.Database
module Server = Dc_server.Server
module Guard = Dc_guard.Guard

let contains_s s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

(* ------------------------------------------------------------------ *)
(* Generators *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Value.Int i) small_signed_int;
        map (fun s -> Value.Str s) (string_size (int_bound 12));
        map (fun b -> Value.Bool b) bool;
        (* finite floats only: NaN breaks structural equality, which is
           a property of equality, not of the codec *)
        map (fun f -> Value.Float f) (float_bound_inclusive 1e9);
      ])

let tuple_gen = QCheck.Gen.(map Tuple.of_list (list_size (int_bound 4) value_gen))
let bytes_gen = QCheck.Gen.(string_size ~gen:char (int_bound 200))

let request_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> Wire.Stmt s) bytes_gen;
        map (fun s -> Wire.Query s) bytes_gen;
        return Wire.Snapshot;
        map (fun b -> Wire.Metrics (if b then `Text else `Json)) bool;
        return Wire.Bye;
      ])

let error_code_gen =
  QCheck.Gen.oneofl
    [
      Wire.Parse; Wire.Type; Wire.Semantic; Wire.Limit; Wire.Server;
      Wire.Protocol; Wire.Internal;
    ]

let response_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> Wire.Output s) bytes_gen;
        map3
          (fun version columns tuples -> Wire.Rows { version; columns; tuples })
          small_nat
          (list_size (int_bound 4) (string_size (int_bound 8)))
          (list_size (int_bound 8) tuple_gen);
        map3
          (fun version lsn (relations, views, summary) ->
            Wire.Snap
              {
                version;
                durable_lsn = (if lsn = 0 then None else Some lsn);
                relations;
                views;
                summary;
              })
          small_nat small_nat
          (triple small_nat small_nat bytes_gen);
        map (fun s -> Wire.Metrics_body s) bytes_gen;
        return Wire.Bye_ok;
        map2
          (fun code message -> Wire.Err { code; message })
          error_code_gen bytes_gen;
      ])

let request_arb =
  QCheck.make ~print:(Fmt.str "%a" Wire.pp_request) request_gen

let response_arb =
  QCheck.make ~print:(Fmt.str "%a" Wire.pp_response) response_gen

(* ------------------------------------------------------------------ *)
(* Pure codec properties *)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request round-trips (payload and frame)" ~count:500
    request_arb (fun req ->
      let payload = Wire.encode_request req in
      let framed = Codec.frame_string payload in
      let payload', next = Codec.read_frame framed 0 in
      next = String.length framed
      && Wire.equal_request req (Wire.decode_request payload'))

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response round-trips (payload and frame)" ~count:500
    response_arb (fun resp ->
      let payload = Wire.encode_response resp in
      let framed = Codec.frame_string payload in
      let payload', next = Codec.read_frame framed 0 in
      next = String.length framed
      && Wire.equal_response resp (Wire.decode_response payload'))

(* arbitrary bytes must decode or raise [Codec.Corrupt] — any other
   exception (or a crash) fails the property *)
let prop_decoder_total =
  QCheck.Test.make ~name:"decoders are total over arbitrary bytes" ~count:1000
    (QCheck.make QCheck.Gen.(string_size ~gen:char (int_bound 300)))
    (fun blob ->
      let probe f = match f blob with _ -> true | exception Codec.Corrupt _ -> true in
      let probe_frame () =
        match Codec.read_frame blob 0 with
        | _ -> true
        | exception Codec.Corrupt _ -> true
      in
      probe Wire.decode_request && probe Wire.decode_response && probe_frame ())

let test_torn_frames () =
  let framed =
    Codec.frame_string (Wire.encode_request (Wire.Stmt "INSERT Edge;"))
  in
  for len = 0 to String.length framed - 1 do
    match Codec.read_frame (String.sub framed 0 len) 0 with
    | _ -> Alcotest.failf "accepted a torn frame of %d/%d bytes" len
              (String.length framed)
    | exception Codec.Corrupt _ -> ()
  done

let test_bitflips_rejected () =
  let framed = Codec.frame_string (Wire.encode_response (Wire.Output "ok")) in
  for i = 0 to String.length framed - 1 do
    let b = Bytes.of_string framed in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41));
    match Codec.read_frame (Bytes.to_string b) 0 with
    | payload, _ ->
      (* the only way a flip survives framing is inside the length word
         making the frame short — decode must then reject the payload *)
      (match Wire.decode_response payload with
      | _ -> Alcotest.failf "byte flip at %d went unnoticed" i
      | exception Codec.Corrupt _ -> ())
    | exception Codec.Corrupt _ -> ()
  done

let test_preamble () =
  let pre = Wire.encode_preamble ~max_frame:Wire.default_max_frame in
  Alcotest.(check int) "length" Wire.preamble_length (String.length pre);
  Alcotest.(check int) "round-trips" Wire.default_max_frame
    (Wire.decode_preamble pre);
  let reject s msg =
    match Wire.decode_preamble s with
    | _ -> Alcotest.failf "accepted %s" msg
    | exception Wire.Protocol_error _ -> ()
  in
  reject "DCNQ\001\000\000\128\000" "bad magic";
  reject "DCNP\002\000\000\128\000" "wrong version";
  reject (Wire.encode_preamble ~max_frame:16) "max_frame below floor";
  reject "DCNP" "short preamble"

(* ------------------------------------------------------------------ *)
(* Live server fixture *)

let setup_src =
  {|
TYPE node = STRING;
TYPE edgerel = RELATION a, b OF RECORD a, b: node END;
VAR Edge: edgerel;
INSERT Edge VALUES ("a", "b"), ("b", "c");
|}

let with_server ?(io_timeout = 5.) f =
  let db = Database.create () in
  let srv = Server.create db in
  let s = Server.open_session srv in
  ignore (Server.execute s setup_src);
  Server.close_session s;
  let listener = Net.listen ~io_timeout srv (Net.Tcp ("127.0.0.1", 0)) in
  let port = Net.bound_port listener in
  Fun.protect
    ~finally:(fun () ->
      Net.stop listener;
      Server.shutdown srv)
    (fun () -> f srv port)

let connect port = Net.Client.connect (Net.Tcp ("127.0.0.1", port))

(* raw socket for adversarial bytes *)
let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send_raw fd s =
  let rec go pos =
    if pos < String.length s then
      go (pos + Unix.write_substring fd s pos (String.length s - pos))
  in
  try go 0 with Unix.Unix_error _ -> ()

(* drain until the peer closes (or 10s cap); returns everything read *)
let recv_until_close fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining > 0. then
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> ()
      | _ -> (
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error _ -> ())
  in
  go ();
  Buffer.contents buf

let client_preamble = Wire.encode_preamble ~max_frame:Wire.default_max_frame

(* parse the server's reply stream after our preamble: its preamble,
   then any [Err] frame it managed to send *)
let decode_reply_stream data =
  if String.length data < Wire.preamble_length then None
  else begin
    ignore (Wire.decode_preamble (String.sub data 0 Wire.preamble_length));
    match Codec.read_frame data Wire.preamble_length with
    | payload, _ -> Some (Wire.decode_response payload)
    | exception Codec.Corrupt _ -> None
  end

(* ------------------------------------------------------------------ *)
(* Well-formed client over the live server *)

let test_client_roundtrip () =
  with_server @@ fun _srv port ->
  let c = connect port in
  let out = Net.Client.exec c "QUERY Edge;" in
  Alcotest.(check bool) "query output rendered" true (contains_s out "2 tuples");
  ignore (Net.Client.exec c {|INSERT Edge VALUES ("c", "d");|});
  let v1, cols, tuples = Net.Client.query c "QUERY Edge;" in
  Alcotest.(check (list string)) "columns" [ "a"; "b" ] cols;
  Alcotest.(check int) "rows" 3 (List.length tuples);
  let version, _lsn, relations, views, summary = Net.Client.snapshot c in
  Alcotest.(check int) "snapshot version matches query" v1 version;
  Alcotest.(check int) "one relation" 1 relations;
  Alcotest.(check int) "no views" 0 views;
  Alcotest.(check bool) "summary rendered" true (contains_s summary "version");
  (* reads scale through a second concurrent client *)
  let c2 = connect port in
  let v2, _, tuples2 = Net.Client.query c2 "QUERY Edge;" in
  Alcotest.(check int) "same version from second client" v1 v2;
  Alcotest.(check int) "same rows" 3 (List.length tuples2);
  Net.Client.close c2;
  Net.Client.close c

let test_error_taxonomy () =
  with_server @@ fun _srv port ->
  let c = connect port in
  let expect code src =
    match Net.Client.exec c src with
    | _ -> Alcotest.failf "no error for %s" src
    | exception Net.Client.Remote (got, _) ->
      Alcotest.(check int)
        (Fmt.str "code for %s" src)
        (Wire.error_code_to_int code)
        (Wire.error_code_to_int got)
  in
  expect Wire.Parse "INSERT;";
  expect Wire.Type "QUERY NoSuchRel;";
  expect Wire.Semantic "COMMIT;";
  (* the session survives every failed statement *)
  let v, _, _ = Net.Client.query c "QUERY Edge;" in
  Alcotest.(check bool) "session still serves" true (v > 0);
  (match Net.Client.query c "QUERY Edge; QUERY Edge;" with
  | _ -> Alcotest.fail "multi-statement Query accepted"
  | exception Net.Client.Remote (Wire.Server, _) -> ()
  | exception Net.Client.Remote (code, m) ->
    Alcotest.failf "unexpected code %a: %s" Wire.pp_error_code code m);
  Net.Client.close c

let test_metrics_over_wire () =
  Dc_obs.Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Dc_obs.Obs.set_enabled false)
  @@ fun () ->
  with_server @@ fun _srv port ->
  let c = connect port in
  ignore (Net.Client.query c "QUERY Edge;");
  let text = Net.Client.metrics c `Text in
  Alcotest.(check bool)
    "net instruments present" true
    (contains_s text "dc_net_connections");
  let json = Net.Client.metrics c `Json in
  Alcotest.(check bool) "json body" true (contains_s json "\"metrics\"");
  Net.Client.close c

let test_unix_socket () =
  let dir = Filename.temp_file "dc_net" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "dbpl.sock" in
  let db = Database.create () in
  let srv = Server.create db in
  let s = Server.open_session srv in
  ignore (Server.execute s setup_src);
  Server.close_session s;
  let listener = Net.listen srv (Net.Unix_sock path) in
  Fun.protect
    ~finally:(fun () ->
      Net.stop listener;
      Server.shutdown srv)
    (fun () ->
      let c = Net.Client.connect (Net.Unix_sock path) in
      let _, _, tuples = Net.Client.query c "QUERY Edge;" in
      Alcotest.(check int) "rows over unix socket" 2 (List.length tuples);
      Net.Client.close c);
  Alcotest.(check bool) "socket file unlinked" false (Sys.file_exists path)

(* ------------------------------------------------------------------ *)
(* Adversarial peers *)

(* after each attack the server must still serve a fresh client *)
let check_still_serving port =
  let c = connect port in
  let _, _, tuples = Net.Client.query c "QUERY Edge;" in
  Alcotest.(check bool) "server still serving" true (List.length tuples >= 2);
  Net.Client.close c

let test_garbage_preamble () =
  with_server ~io_timeout:2. @@ fun _srv port ->
  let fd = raw_connect port in
  send_raw fd "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  let reply = recv_until_close fd in
  Unix.close fd;
  (* the server may answer with a framed protocol error before closing,
     but it must not echo a preamble to a non-peer *)
  Alcotest.(check bool)
    "closed without completing a handshake" true
    (String.length reply = 0
    ||
    match Wire.decode_preamble (String.sub reply 0 Wire.preamble_length) with
    | _ -> false
    | exception _ -> true);
  check_still_serving port

let test_oversized_claim () =
  with_server ~io_timeout:2. @@ fun _srv port ->
  let fd = raw_connect port in
  send_raw fd client_preamble;
  (* header claiming a 1 GiB payload: must be rejected from the header
     alone — a structured Err, then disconnect, and no 1 GiB allocation *)
  let buf = Buffer.create 8 in
  Codec.u32 buf (1 lsl 30);
  Codec.u32 buf 0;
  send_raw fd (Buffer.contents buf);
  let reply = recv_until_close fd in
  Unix.close fd;
  (match decode_reply_stream reply with
  | Some (Wire.Err { code = Wire.Protocol; message }) ->
    Alcotest.(check bool) "names max_frame" true (contains_s message "max_frame")
  | Some r -> Alcotest.failf "unexpected reply %a" Wire.pp_response r
  | None -> Alcotest.fail "no structured error before close");
  check_still_serving port

let test_truncated_frame () =
  with_server ~io_timeout:2. @@ fun _srv port ->
  let fd = raw_connect port in
  send_raw fd client_preamble;
  let framed = Codec.frame_string (Wire.encode_request (Wire.Stmt "QUERY Edge;")) in
  send_raw fd (String.sub framed 0 (String.length framed - 3));
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let reply = recv_until_close fd in
  Unix.close fd;
  (* the torn frame earns a protocol error (or a silent close) — never a
     successful execution *)
  (match decode_reply_stream reply with
  | Some (Wire.Err { code = Wire.Protocol; _ }) | None -> ()
  | Some r -> Alcotest.failf "unexpected reply %a" Wire.pp_response r);
  check_still_serving port

let test_crc_corruption () =
  with_server ~io_timeout:2. @@ fun _srv port ->
  let fd = raw_connect port in
  send_raw fd client_preamble;
  let framed =
    Bytes.of_string
      (Codec.frame_string (Wire.encode_request (Wire.Stmt "QUERY Edge;")))
  in
  let i = Bytes.length framed - 1 in
  Bytes.set framed i (Char.chr (Char.code (Bytes.get framed i) lxor 0xff));
  send_raw fd (Bytes.to_string framed);
  let reply = recv_until_close fd in
  Unix.close fd;
  (match decode_reply_stream reply with
  | Some (Wire.Err { code = Wire.Protocol; message }) ->
    Alcotest.(check bool) "names the CRC" true (contains_s message "CRC")
  | Some r -> Alcotest.failf "unexpected reply %a" Wire.pp_response r
  | None -> Alcotest.fail "no structured error before close");
  check_still_serving port

(* a hostile peer stalling mid-frame must not delay anyone else — in
   particular not the writer thread *)
let test_stalled_peer_does_not_wedge_writer () =
  with_server ~io_timeout:8. @@ fun _srv port ->
  let fd = raw_connect port in
  send_raw fd client_preamble;
  let framed = Codec.frame_string (Wire.encode_request (Wire.Stmt "QUERY Edge;")) in
  (* half a frame, then silence: the connection thread is now parked in
     its io_timeout window *)
  send_raw fd (String.sub framed 0 6);
  let t0 = Unix.gettimeofday () in
  let c = connect port in
  ignore (Net.Client.exec c {|INSERT Edge VALUES ("w", "x");|});
  let v, _, tuples = Net.Client.query c "QUERY Edge;" in
  let elapsed = Unix.gettimeofday () -. t0 in
  Net.Client.close c;
  Unix.close fd;
  Alcotest.(check bool) "write committed" true (v > 0);
  Alcotest.(check int) "write visible" 3 (List.length tuples);
  Alcotest.(check bool)
    (Fmt.str "writer answered while peer stalled (%.1fs)" elapsed)
    true (elapsed < 5.)

let test_random_blob_fuzz () =
  with_server ~io_timeout:1. @@ fun _srv port ->
  let rng = Dc_workload.Rng.create 0xF00D in
  for _ = 1 to 25 do
    let len = Dc_workload.Rng.int rng 64 in
    let blob =
      String.init len (fun _ -> Char.chr (Dc_workload.Rng.int rng 256))
    in
    let fd = raw_connect port in
    send_raw fd blob;
    (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
    ignore (recv_until_close fd);
    Unix.close fd
  done;
  check_still_serving port

let test_idle_timeout_enforced () =
  with_server ~io_timeout:1. @@ fun _srv port ->
  (* a peer that completes the handshake then stalls mid-header is
     disconnected once io_timeout elapses *)
  let fd = raw_connect port in
  send_raw fd client_preamble;
  send_raw fd "\001\002\003";
  let t0 = Unix.gettimeofday () in
  let reply = recv_until_close fd in
  let elapsed = Unix.gettimeofday () -. t0 in
  Unix.close fd;
  ignore reply;
  Alcotest.(check bool)
    (Fmt.str "disconnected after io_timeout (%.1fs)" elapsed)
    true
    (elapsed < 8.);
  check_still_serving port

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dc_net"
    [
      ( "wire codec",
        qcheck [ prop_request_roundtrip; prop_response_roundtrip; prop_decoder_total ]
        @ [
            Alcotest.test_case "torn frames rejected" `Quick test_torn_frames;
            Alcotest.test_case "bit flips rejected" `Quick test_bitflips_rejected;
            Alcotest.test_case "preamble" `Quick test_preamble;
          ] );
      ( "client",
        [
          Alcotest.test_case "round trip" `Quick test_client_roundtrip;
          Alcotest.test_case "error taxonomy" `Quick test_error_taxonomy;
          Alcotest.test_case "metrics over the wire" `Quick
            test_metrics_over_wire;
          Alcotest.test_case "unix socket" `Quick test_unix_socket;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "garbage preamble" `Quick test_garbage_preamble;
          Alcotest.test_case "oversized length claim" `Quick
            test_oversized_claim;
          Alcotest.test_case "truncated frame" `Quick test_truncated_frame;
          Alcotest.test_case "crc corruption" `Quick test_crc_corruption;
          Alcotest.test_case "stalled peer vs writer" `Quick
            test_stalled_peer_does_not_wedge_writer;
          Alcotest.test_case "random blobs" `Quick test_random_blob_fuzz;
          Alcotest.test_case "mid-frame stall times out" `Quick
            test_idle_timeout_enforced;
        ] );
    ]
