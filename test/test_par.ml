(* Tests for Dc_par and the parallel fixpoint paths it powers.

   Covers the domain pool itself (shard ordering, nesting, exception
   protocol, lazy spawn/shutdown), the hash partitioners (qcheck:
   disjoint, covering, deterministic for P in {1,2,3,8}), the
   domain-safety satellites (one registry counter hammered from four
   domains; a shared guard's atomic row budget across four domains),
   abort atomicity of a parallel fixpoint round, and end-to-end
   equivalence: the sharded engines at P = 1 and P = 4 must agree with
   the sequential oracle on seeded workloads and on a live-view update
   stream.  Everything runs with the sequential cutoff floored to 1 and
   an explicit domain count, so the parallel code paths execute
   regardless of how many physical cores the test machine has. *)

open Dc_relation
open Dc_calculus
open Dc_core
open Dc_datalog
module Guard = Dc_guard.Guard
module Obs = Dc_obs.Obs
module Par = Dc_par.Par
module Ivm = Dc_ivm.Ivm
module Rng = Dc_workload.Rng
module Graph_gen = Dc_workload.Graph_gen
module TS = Facts.TS

let rel_testable = Alcotest.testable Relation.pp Relation.equal

(* ------------------------------------------------------------------ *)
(* The pool *)

let test_map_ordering () =
  let r = Par.map ~shards:8 (fun i -> i * i) in
  Alcotest.(check (array int))
    "shard results in shard order"
    (Array.init 8 (fun i -> i * i))
    r;
  (* a single shard never touches the pool *)
  Alcotest.(check (array int)) "one shard inline" [| 42 |]
    (Par.map ~shards:1 (fun _ -> 42))

let test_map_reduce_deterministic () =
  let s =
    Par.map_reduce ~shards:6
      ~map:(fun i -> string_of_int i)
      ~reduce:( ^ ) ~init:"" ()
  in
  Alcotest.(check string) "reduce folds in ascending shard order" "012345" s

let test_nested_map_inline () =
  (* an inner map on a worker domain degrades to inline sequential
     execution; an inner map on the main domain queues behind the outer
     jobs — neither may deadlock *)
  let r =
    Par.map ~shards:3 (fun i ->
        Array.fold_left ( + ) 0 (Par.map ~shards:3 (fun j -> (10 * i) + j)))
  in
  Alcotest.(check (array int)) "nested totals" [| 3; 33; 63 |] r

let test_pool_reuse_and_shutdown () =
  ignore (Par.map ~shards:4 (fun i -> i));
  Alcotest.(check bool) "workers spawned" true (Par.pool_size () >= 3);
  let before = Par.pool_size () in
  ignore (Par.map ~shards:4 (fun i -> i));
  Alcotest.(check int) "workers reused, not respawned" before (Par.pool_size ());
  Par.shutdown ();
  Alcotest.(check int) "shutdown joins everyone" 0 (Par.pool_size ());
  (* the pool must come back lazily after a shutdown *)
  Alcotest.(check (array int))
    "map after shutdown respawns" [| 0; 2; 4 |]
    (Par.map ~shards:3 (fun i -> 2 * i))

let test_exception_protocol () =
  let ran = Array.make 4 false in
  let first_errors = Atomic.make 0 in
  (match
     Par.map ~shards:4
       ~on_first_error:(fun _ -> Atomic.incr first_errors)
       (fun i ->
         ran.(i) <- true;
         if i = 2 then failwith "shard 2 exploded";
         i)
   with
  | (_ : int array) -> Alcotest.fail "expected the shard failure to re-raise"
  | exception Failure msg ->
    Alcotest.(check string) "original exception" "shard 2 exploded" msg);
  Alcotest.(check (array bool))
    "barrier held: every shard still ran"
    [| true; true; true; true |]
    ran;
  Alcotest.(check int) "on_first_error fired exactly once" 1
    (Atomic.get first_errors)

let test_prefer_picks_real_error () =
  match
    Par.map ~shards:4
      ~prefer:(function Failure _ -> true | _ -> false)
      (fun i ->
        if i = 1 then raise Not_found;
        if i = 3 then failwith "the real one";
        i)
  with
  | (_ : int array) -> Alcotest.fail "expected a re-raise"
  | exception Failure msg ->
    Alcotest.(check string) "preferred over lower-shard Not_found"
      "the real one" msg
  | exception Not_found -> Alcotest.fail "prefer should have skipped Not_found"

let test_with_domains_scoping () =
  let outer = Par.domains () in
  let inner = Par.with_domains 5 Par.domains in
  Alcotest.(check int) "scoped value" 5 inner;
  Alcotest.(check int) "restored" outer (Par.domains ());
  (match Par.with_domains 3 (fun () -> failwith "boom") with
  | () -> Alcotest.fail "expected failure"
  | exception Failure _ -> ());
  Alcotest.(check int) "restored on exception" outer (Par.domains ())

(* ------------------------------------------------------------------ *)
(* Hash partitioners (qcheck): disjoint, covering, deterministic *)

let shard_counts = [ 1; 2; 3; 8 ]

let tuples_of_pairs ps =
  List.map (fun (a, b) -> Tuple.make2 (Value.Int a) (Value.Int b)) ps

let prop_partition_set =
  QCheck.Test.make ~name:"Facts.partition_set: disjoint+covering+deterministic"
    ~count:200
    QCheck.(list (pair small_int small_int))
    (fun pairs ->
      let set = TS.of_list (tuples_of_pairs pairs) in
      List.for_all
        (fun p ->
          let shards = Facts.partition_set ~shards:p set in
          let again = Facts.partition_set ~shards:p set in
          Array.length shards = max 1 p
          (* deterministic: same split on every call *)
          && Array.for_all2 TS.equal shards again
          (* covering: the union is the input *)
          && TS.equal set
               (Array.fold_left TS.union TS.empty shards)
          (* disjoint: pairwise empty intersections *)
          && (let ok = ref true in
              Array.iteri
                (fun i si ->
                  Array.iteri
                    (fun j sj ->
                      if i < j && not (TS.is_empty (TS.inter si sj)) then
                        ok := false)
                    shards)
                shards;
              !ok))
        shard_counts)

let prop_partition_relation =
  QCheck.Test.make
    ~name:"Relation.partition_hash: disjoint+covering+deterministic" ~count:200
    QCheck.(list (pair small_int small_int))
    (fun pairs ->
      let schema = Constructor.binary_schema Value.TInt in
      let r =
        List.fold_left
          (fun acc t -> Relation.add_unchecked t acc)
          (Relation.empty schema) (tuples_of_pairs pairs)
      in
      List.for_all
        (fun p ->
          let shards = Relation.partition_hash ~shards:p r in
          let again = Relation.partition_hash ~shards:p r in
          Array.length shards = max 1 p
          && Array.for_all2 Relation.equal shards again
          && Relation.equal r
               (Array.fold_left Relation.union (Relation.empty schema) shards)
          && Array.for_all
               (fun s ->
                 Relation.for_all
                   (fun t ->
                     Array.for_all
                       (fun s' -> s == s' || not (Relation.mem t s'))
                       shards)
                   s)
               shards)
        shard_counts)

(* ------------------------------------------------------------------ *)
(* Satellite: the metrics registry under concurrent increments *)

let with_metrics f =
  let saved = Obs.on () in
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled saved) f

let test_obs_counter_hammer () =
  with_metrics @@ fun () ->
  let c = Obs.Counter.make "test_par_hammer_total" in
  let per_domain = 25_000 in
  ignore
    (Par.map ~shards:4 (fun _ ->
         (* find_or_create from every domain too: the registry lookup
            itself must be mutex-guarded *)
         let c' = Obs.Counter.make "test_par_hammer_total" in
         for _ = 1 to per_domain do
           Obs.Counter.inc c'
         done));
  Alcotest.(check int)
    "4 domains x 25k increments, none lost" (4 * per_domain)
    (Obs.Counter.value c)

(* ------------------------------------------------------------------ *)
(* Satellite: one shared guard budget across domains *)

let test_guard_budget_across_domains () =
  let lim = 10_000 in
  let g = Guard.create ~rows:lim () in
  let results =
    Par.map ~shards:4 (fun _ ->
        let mine = ref 0 in
        (try
           for _ = 1 to lim do
             Guard.tick g (lazy "par.test");
             incr mine
           done
         with Guard.Exhausted (Guard.Rows_exhausted n, _) ->
           Alcotest.(check int) "trip names the configured limit" lim n);
        !mine)
  in
  (* the budget is one atomic counter: exactly [lim] ticks succeed
     globally, however they interleave; every later tick raises in
     whichever domain issues it *)
  Alcotest.(check int)
    "successful ticks across all domains = the limit" lim
    (Array.fold_left ( + ) 0 results);
  Alcotest.(check bool) "guard row count reached the limit" true
    (Guard.rows g >= lim)

let test_cancel_reaches_other_domains () =
  let g = Guard.create () in
  let results =
    Par.map ~shards:4 (fun i ->
        if i = 0 then begin
          Guard.cancel g;
          `Cancelled_by_me
        end
        else begin
          (* spin until the cancellation flag propagates *)
          match
            while true do
              Guard.check g ~site:"par.test"
            done
          with
          | () -> `Unreachable
          | exception Guard.Exhausted (Guard.Cancelled, _) -> `Saw_cancel
        end)
  in
  Array.iteri
    (fun i r ->
      let expected = if i = 0 then `Cancelled_by_me else `Saw_cancel in
      Alcotest.(check bool) (Fmt.str "shard %d" i) true (r = expected))
    results

(* ------------------------------------------------------------------ *)
(* Parallel fixpoint: equivalence and abort atomicity *)

let pair_str a b = Tuple.make2 (Value.Str a) (Value.Str b)
let edge_schema = Constructor.binary_schema Value.TStr

let chain_rel n =
  Relation.of_list edge_schema
    (List.init n (fun i -> pair_str (Fmt.str "n%d" i) (Fmt.str "n%d" (i + 1))))

let chain_tc n =
  let tuples = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n do
      tuples := pair_str (Fmt.str "n%d" i) (Fmt.str "n%d" j) :: !tuples
    done
  done;
  Relation.of_list edge_schema !tuples

let db_with_chain n =
  let db = Database.create () in
  Database.declare db "Edge" edge_schema;
  Database.set db "Edge" (chain_rel n);
  Database.define_constructor db (Constructor.transitive_closure ());
  db

let tc_range = Ast.(Construct (Rel "Edge", "tc", []))

(* force the sharded path onto these tiny workloads *)
let forced_parallel p f = Par.with_domains p (fun () -> Par.with_seq_cutoff 1 f)

let test_fixpoint_parallel_equivalence () =
  let db = db_with_chain 12 in
  let expected = chain_tc 12 in
  List.iter
    (fun p ->
      Alcotest.check rel_testable
        (Fmt.str "core fixpoint at P=%d" p)
        expected
        (forced_parallel p (fun () -> Database.query db tc_range)))
    [ 1; 2; 4 ]

let with_failpoints f =
  Guard.Failpoint.reset ();
  Fun.protect ~finally:Guard.Failpoint.reset f

(* A parallel round aborted by the guard — wherever the trip lands, main
   domain or worker — must roll the shared index cache back and leave a
   clean re-run unaffected. *)
let test_parallel_abort_atomicity () =
  let db = db_with_chain 10 in
  let env = Database.eval_env db in
  let expected =
    forced_parallel 4 (fun () -> Eval.eval_range env tc_range)
  in
  Alcotest.check rel_testable "parallel warm run correct" (chain_tc 10)
    expected;
  let check_atomic name run =
    let snap = Index_cache.snapshot env.Eval.icache in
    let edges_before = Database.get db "Edge" in
    (match forced_parallel 4 run with
    | (_ : Relation.t) -> Alcotest.failf "%s: expected Guard.Exhausted" name
    | exception Guard.Exhausted _ -> ());
    Alcotest.(check bool)
      (Fmt.str "%s: icache rolled back" name)
      true
      (Index_cache.snapshot_equal snap (Index_cache.snapshot env.Eval.icache));
    Alcotest.(check bool)
      (Fmt.str "%s: stored relation untouched" name)
      true
      (edges_before == Database.get db "Edge");
    Alcotest.check rel_testable
      (Fmt.str "%s: clean parallel re-run unaffected" name)
      expected
      (forced_parallel 4 (fun () -> Eval.eval_range env tc_range))
  in
  (* a row budget small enough that a mid-round worker evaluation trips *)
  check_atomic "rows limit" (fun () ->
      Eval.eval_range (Eval.with_guard env (Guard.create ~rows:15 ())) tc_range);
  (* deterministic fault injection: failpoints fire on domain 0 only *)
  with_failpoints (fun () ->
      Guard.Failpoint.arm "fixpoint.round" 2;
      check_atomic "failpoint fixpoint.round" (fun () ->
          Eval.eval_range env tc_range));
  with_failpoints (fun () ->
      Guard.Failpoint.arm "eval.branch" 3;
      check_atomic "failpoint eval.branch" (fun () ->
          Eval.eval_range env tc_range))

(* ------------------------------------------------------------------ *)
(* Six-way oracle at forced parallelism *)

(* [Oracle.check_seed] asserts naive = seminaive = direct IR = magic =
   tabled = parallel(P=1,P=4) with the cutoff floored inside the
   parallel arms; a dedicated seed range here keeps these cases disjoint
   from test_datalog's. *)
let test_oracle_seeds () =
  for seed = 4000 to 4049 do
    Oracle.check_seed seed
  done

(* ------------------------------------------------------------------ *)
(* Live views maintained under forced parallelism *)

let ts_of_relation rel = Relation.fold TS.add rel TS.empty

let test_parallel_ivm_stream () =
  forced_parallel 4 @@ fun () ->
  let seed = 20260808 in
  let rng = Rng.create seed in
  let nodes = 10 in
  let db = Database.create () in
  Database.declare db "edge" Graph_gen.edge_schema;
  Database.set db "edge"
    (Graph_gen.random_graph ~seed:(Rng.int rng 1_000_000) ~nodes
       ~edges:(2 * nodes));
  let schema_of _ = Graph_gen.edge_schema in
  let defs, bottoms =
    Translate.to_constructors schema_of Oracle.tc_nonlinear
  in
  List.iter (fun (n, s) -> Database.declare db n s) bottoms;
  Database.define_constructors db defs;
  let view =
    Ivm.materialize db ~constructor:"path" ~base:"__bottom_path" ~args:[]
  in
  let rand_node () = Graph_gen.node (Rng.int rng nodes) in
  let expected () =
    (* independent sequential oracle over the original rules *)
    Seminaive.query ~domains:1 Oracle.tc_nonlinear
      (Facts.of_relation "edge" (Database.get db "edge") (Facts.empty ()))
      "path"
  in
  for i = 1 to 300 do
    let rel = Database.get db "edge" in
    let step =
      if Relation.cardinal rel > 0 && Rng.bool rng 0.45 then begin
        let ts = Relation.to_list rel in
        let t = List.nth ts (Rng.int rng (List.length ts)) in
        Database.delete db "edge" t;
        Fmt.str "DELETE %a" Tuple.pp t
      end
      else begin
        let t = Tuple.of_list [ rand_node (); rand_node () ] in
        Database.insert db "edge" t;
        Fmt.str "INSERT %a" Tuple.pp t
      end
    in
    let want = expected () and got = ts_of_relation (Ivm.value view) in
    if not (TS.equal want got) then
      Alcotest.failf
        "seed %d: step %d (%s): parallel-maintained extent diverged: %d \
         maintained vs %d refixpoint tuples"
        seed i step (TS.cardinal got) (TS.cardinal want)
  done

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dc_par"
    [
      ( "pool",
        [
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "map_reduce deterministic" `Quick
            test_map_reduce_deterministic;
          Alcotest.test_case "nested map" `Quick test_nested_map_inline;
          Alcotest.test_case "reuse and shutdown" `Quick
            test_pool_reuse_and_shutdown;
          Alcotest.test_case "exception protocol" `Quick
            test_exception_protocol;
          Alcotest.test_case "prefer real error" `Quick
            test_prefer_picks_real_error;
          Alcotest.test_case "with_domains scoping" `Quick
            test_with_domains_scoping;
        ] );
      ("partitioning", qcheck [ prop_partition_set; prop_partition_relation ]);
      ( "domain safety",
        [
          Alcotest.test_case "obs counter hammered from 4 domains" `Quick
            test_obs_counter_hammer;
          Alcotest.test_case "guard budget shared across domains" `Quick
            test_guard_budget_across_domains;
          Alcotest.test_case "cancellation reaches other domains" `Quick
            test_cancel_reaches_other_domains;
        ] );
      ( "parallel fixpoint",
        [
          Alcotest.test_case "equivalence P=1,2,4" `Quick
            test_fixpoint_parallel_equivalence;
          Alcotest.test_case "abort atomicity" `Quick
            test_parallel_abort_atomicity;
        ] );
      ( "oracle",
        [ Alcotest.test_case "6-way agreement, seeds 4000-4049" `Slow
            test_oracle_seeds ] );
      ( "ivm",
        [ Alcotest.test_case "parallel-maintained stream" `Slow
            test_parallel_ivm_stream ] );
    ]
