(* Tests for Dc_obs: conservation properties tying the metrics registry
   to the structures it observes, span well-nesting, agreement between
   the Prometheus and JSON renderers, and the abort-consistency
   regression — SHOW METRICS after Guard.Exhausted must reflect the
   rolled-back state, not the aborted fixpoint's partial progress. *)

open Dc_relation
open Dc_datalog

module Obs = Dc_obs.Obs
module Ir = Dc_exec.Ir
module Rng = Dc_workload.Rng
module Guard = Dc_guard.Guard
module Database = Dc_core.Database
module Ast = Dc_calculus.Ast

(* Collection may already be on (DC_METRICS=1 in CI): save and restore. *)
let with_metrics f =
  let saved = Obs.on () in
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled saved) f

(* ------------------------------------------------------------------ *)
(* Registry row counts = EXPLAIN trace counters *)

(* Sum trace counters per (entry, label, op) — repeated occurrences of
   the same labelled operator accumulate in the registry. *)
let group_counters cs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (entry, op, lbl, (c : Ir.counters)) ->
      let key = (entry, lbl, op) in
      let rows, probes =
        Option.value ~default:(0, 0) (Hashtbl.find_opt tbl key)
      in
      Hashtbl.replace tbl key (rows + c.Ir.rows, probes + c.Ir.probes))
    cs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let check_registry_matches_trace seed =
  Obs.reset ();
  let edb =
    Facts.of_relation "edge"
      (Dc_workload.Graph_gen.random_graph ~seed ~nodes:10 ~edges:20)
      (Facts.empty ())
  in
  let trace = Ir.Trace.create () in
  ignore (Seminaive.query ~trace Oracle.tc_linear edb "path");
  Ir.Trace.register_metrics trace;
  List.iter
    (fun ((entry, lbl, op), (rows, probes)) ->
      let labels = [ ("entry", entry); ("label", lbl); ("op", op) ] in
      Alcotest.(check int)
        (Fmt.str "rows of %s/%s %S (seed %d)" entry op lbl seed)
        rows
        (Obs.Counter.value (Obs.Counter.make ~labels "dc_operator_rows_total"));
      if probes > 0 then
        Alcotest.(check int)
          (Fmt.str "probes of %s/%s %S (seed %d)" entry op lbl seed)
          probes
          (Obs.Counter.value
             (Obs.Counter.make ~labels "dc_operator_probes_total")))
    (group_counters (Ir.Trace.counters trace))

let test_registry_matches_trace () =
  with_metrics @@ fun () ->
  List.iter check_registry_matches_trace [ 1; 7; 42; 1985 ]

let prop_registry_matches_trace =
  QCheck.Test.make ~count:25 ~name:"registry rows = trace counters"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_metrics (fun () -> check_registry_matches_trace seed);
      true)

(* ------------------------------------------------------------------ *)
(* Histogram conservation *)

let prop_histogram_conservation =
  QCheck.Test.make ~count:100 ~name:"histogram conserves observations"
    QCheck.(list (float_range 0. 1e7))
    (fun xs ->
      Obs.reset ();
      let h = Obs.Histogram.make "test_conservation_ms" in
      List.iter (Obs.Histogram.observe h) xs;
      let n = List.length xs in
      let bucket_total =
        Array.fold_left ( + ) 0 (Obs.Histogram.bucket_counts h)
      in
      let sum = List.fold_left ( +. ) 0. xs in
      if Obs.Histogram.count h <> n then
        QCheck.Test.fail_reportf "count %d <> %d observations"
          (Obs.Histogram.count h) n;
      if bucket_total <> n then
        QCheck.Test.fail_reportf "bucket total %d <> count %d" bucket_total n;
      if Float.abs (Obs.Histogram.sum h -. sum)
         > 1e-6 *. (1. +. Float.abs sum)
      then
        QCheck.Test.fail_reportf "sum %g <> %g" (Obs.Histogram.sum h) sum;
      true)

let test_histogram_bucket_monotone () =
  (* one observation per finite bound lands exactly one count in each
     bucket (bounds are inclusive upper bounds) *)
  Obs.reset ();
  let h = Obs.Histogram.make "test_bounds_ms" in
  Array.iter (fun b -> Obs.Histogram.observe h b) Obs.Histogram.bucket_bounds;
  Obs.Histogram.observe h infinity;
  let counts = Obs.Histogram.bucket_counts h in
  Alcotest.(check (array int))
    "each bound hits its own bucket; +Inf catches the rest"
    (Array.make (Array.length counts) 1)
    counts

(* ------------------------------------------------------------------ *)
(* Span well-nesting *)

(* Run a random forest of nested spans; returns how many were opened. *)
let rec span_tree rng depth =
  let children = if depth >= 3 then 0 else Rng.int rng 4 in
  Obs.Span.timed
    (Fmt.str "s%d" depth)
    (fun () ->
      let n = ref 1 in
      for _ = 1 to children do
        n := !n + span_tree rng (depth + 1)
      done;
      !n)

let prop_spans_well_nested =
  QCheck.Test.make ~count:60 ~name:"span log is well-nested"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      with_metrics (fun () ->
          let rng = Rng.create seed in
          let total = ref 0 in
          for _ = 1 to 1 + Rng.int rng 3 do
            total := !total + span_tree rng 0
          done;
          if not (Obs.Span.well_nested ()) then
            QCheck.Test.fail_reportf "spans not well-nested (seed %d)" seed;
          let logged = List.length (Obs.Span.events ()) in
          if logged <> !total then
            QCheck.Test.fail_reportf "%d spans logged, %d run (seed %d)"
              logged !total seed;
          true))

let test_span_depths () =
  with_metrics @@ fun () ->
  Obs.Span.timed "outer" (fun () ->
      Obs.Span.timed "inner" (fun () -> ());
      Obs.Span.timed "inner2" (fun () -> ()));
  let depth_of name =
    let e =
      List.find (fun e -> e.Obs.Span.sp_name = name) (Obs.Span.events ())
    in
    e.Obs.Span.sp_depth
  in
  Alcotest.(check int) "outer at depth 0" 0 (depth_of "outer");
  Alcotest.(check int) "inner at depth 1" 1 (depth_of "inner");
  Alcotest.(check int) "inner2 at depth 1" 1 (depth_of "inner2");
  Alcotest.(check bool) "well nested" true (Obs.Span.well_nested ())

(* ------------------------------------------------------------------ *)
(* Prometheus and JSON render the same registry *)

let prom_names text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         match String.split_on_char ' ' line with
         | [ "#"; "TYPE"; name; _kind ] -> Some name
         | _ -> None)

let json_names text =
  (* every instrument entry starts with {"name": "<name>" *)
  let marker = "{\"name\": \"" in
  let ml = String.length marker in
  let out = ref [] in
  let i = ref 0 in
  let n = String.length text in
  while !i + ml <= n do
    if String.sub text !i ml = marker then begin
      let j = ref (!i + ml) in
      while !j < n && text.[!j] <> '"' do
        incr j
      done;
      out := String.sub text (!i + ml) (!j - (!i + ml)) :: !out;
      i := !j
    end
    else incr i
  done;
  List.sort_uniq String.compare !out

let test_renderers_agree () =
  with_metrics @@ fun () ->
  (* populate a representative registry: operator counters, engine
     rounds, spans *)
  let edb =
    Facts.of_relation "edge"
      (Dc_workload.Graph_gen.random_graph ~seed:11 ~nodes:10 ~edges:24)
      (Facts.empty ())
  in
  let trace = Ir.Trace.create () in
  Obs.Span.timed "test" (fun () ->
      ignore (Seminaive.query ~trace Oracle.tc_nonlinear edb "path"));
  Ir.Trace.register_metrics trace;
  let prom = Obs.to_prometheus () in
  let json = Obs.to_json () in
  Alcotest.(check (list string))
    "both renderers expose the same instrument names"
    (List.sort_uniq String.compare (prom_names prom))
    (json_names json);
  (* pin one concrete value to the exact same number in both *)
  let rounds =
    Obs.Counter.value
      (Obs.Counter.make
         ~labels:[ ("engine", "seminaive") ]
         "dc_datalog_rounds_total")
  in
  Alcotest.(check bool) "query ran rounds" true (rounds > 0);
  let prom_line =
    Fmt.str "dc_datalog_rounds_total{engine=\"seminaive\"} %d" rounds
  in
  let json_frag =
    Fmt.str
      "{\"name\": \"dc_datalog_rounds_total\", \"labels\": {\"engine\": \
       \"seminaive\"}, \"type\": \"counter\", \"value\": %d}"
      rounds
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec probe i = i + nn <= nh && (String.sub hay i nn = needle || probe (i + 1)) in
    probe 0
  in
  Alcotest.(check bool) "prometheus carries the value" true
    (contains prom prom_line);
  Alcotest.(check bool) "json carries the value" true (contains json json_frag)

(* ------------------------------------------------------------------ *)
(* Abort consistency: gauges reflect the rolled-back state *)

(* examples/same_generation.dbpl minus its queries: declarations only, so
   the test controls every fixpoint run. *)
let sg_text =
  {|
TYPE person = STRING;
TYPE rel = RELATION a, b OF RECORD a, b: person END;

VAR Up: rel;
VAR Flat: rel;
VAR Down: rel;

CONSTRUCTOR sg FOR Up: rel (Flat: rel; Down: rel): rel;
BEGIN EACH f IN Flat: TRUE,
      <u.a, d.b> OF EACH u IN Up,
                    EACH s IN Up{sg(Flat, Down)},
                    EACH d IN Down:
        u.b = s.a AND s.b = d.a
END sg;

INSERT Up VALUES
  ("carol", "erika"), ("dan", "erika"),
  ("alice", "carol"), ("bob", "carol"),
  ("frank", "dan"),   ("gina", "frank");

INSERT Flat VALUES ("carol", "dan");

INSERT Down VALUES
  ("erika", "carol"), ("erika", "dan"),
  ("carol", "alice"), ("carol", "bob"),
  ("dan", "frank"),   ("frank", "gina");
|}

let sg_range =
  Ast.(
    Construct (Rel "Up", "sg", [ Arg_range (Rel "Flat"); Arg_range (Rel "Down") ]))

let fixpoint_gauge_lines () =
  String.split_on_char '\n' (Obs.to_prometheus ())
  |> List.filter (fun l ->
         (not (String.length l > 0 && l.[0] = '#'))
         && (String.length l >= 11 && String.sub l 0 11 = "dc_fixpoint"))

let test_abort_keeps_gauges () =
  with_metrics @@ fun () ->
  Guard.Failpoint.reset ();
  Fun.protect ~finally:Guard.Failpoint.reset @@ fun () ->
  let db, _ = Dc_lang.Elaborate.run_string sg_text in
  ignore (Database.query db sg_range);
  let g_apps = Obs.Gauge.make "dc_fixpoint_applications" in
  let g_tuples = Obs.Gauge.make "dc_fixpoint_tuples" in
  let apps0 = Obs.Gauge.value g_apps in
  let tuples0 = Obs.Gauge.value g_tuples in
  Alcotest.(check bool) "successful run registered applications" true
    (apps0 > 0.);
  Alcotest.(check bool) "successful run registered tuples" true (tuples0 > 0.);
  let lines0 = fixpoint_gauge_lines () in
  Guard.Failpoint.arm "fixpoint.commit" 1;
  (match Database.query db sg_range with
  | (_ : Relation.t) -> Alcotest.fail "expected Guard.Exhausted"
  | exception Guard.Exhausted _ -> ());
  Alcotest.(check (float 0.)) "applications gauge rolled back" apps0
    (Obs.Gauge.value g_apps);
  Alcotest.(check (float 0.)) "tuples gauge rolled back" tuples0
    (Obs.Gauge.value g_tuples);
  (* the SHOW METRICS view of the same gauges is byte-identical *)
  Alcotest.(check (list string)) "SHOW METRICS gauge lines unchanged" lines0
    (fixpoint_gauge_lines ());
  (* a clean re-run still works and moves the gauges again *)
  ignore (Database.query db sg_range);
  Alcotest.(check (float 0.)) "clean re-run increments applications"
    (apps0 +. 1.)
    (Obs.Gauge.value g_apps)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dc_obs"
    [
      ( "conservation",
        [
          Alcotest.test_case "registry rows = trace counters" `Quick
            test_registry_matches_trace;
          QCheck_alcotest.to_alcotest prop_registry_matches_trace;
          QCheck_alcotest.to_alcotest prop_histogram_conservation;
          Alcotest.test_case "bucket bounds are inclusive" `Quick
            test_histogram_bucket_monotone;
        ] );
      ( "spans",
        [
          QCheck_alcotest.to_alcotest prop_spans_well_nested;
          Alcotest.test_case "depths recorded" `Quick test_span_depths;
        ] );
      ( "renderers",
        [ Alcotest.test_case "prometheus = json" `Quick test_renderers_agree ] );
      ( "abort consistency",
        [
          Alcotest.test_case "gauges survive aborted fixpoint" `Quick
            test_abort_keeps_gauges;
        ] );
    ]
