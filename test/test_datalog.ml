(* Tests for Dc_datalog: bottom-up engines, SLD, stratification, magic
   sets, and the §3.4 translations to/from constructor systems. *)

open Dc_relation
open Dc_datalog
open Syntax

let i n = Value.Int n

let tuple2 a b = Tuple.make2 (i a) (i b)

let edge_facts l =
  Facts.of_list (List.map (fun (a, b) -> ("edge", tuple2 a b)) l)

(* path(X,Y) :- edge(X,Y).  path(X,Z) :- edge(X,Y), path(Y,Z). *)
let tc_program =
  [
    rule (atom "path" [ var "X"; var "Y" ]) [ Pos (atom "edge" [ var "X"; var "Y" ]) ];
    rule
      (atom "path" [ var "X"; var "Z" ])
      [
        Pos (atom "edge" [ var "X"; var "Y" ]);
        Pos (atom "path" [ var "Y"; var "Z" ]);
      ];
  ]

let bin = Schema.make [ ("src", Value.TInt); ("dst", Value.TInt) ]

let closure_of l =
  let rel = Relation.of_pairs bin (List.map (fun (a, b) -> (i a, i b)) l) in
  Algebra.transitive_closure rel

let facts_testable =
  Alcotest.testable
    (fun ppf s -> Facts.TS.iter (Tuple.pp ppf) s)
    Facts.TS.equal

let set_of_relation rel =
  Relation.fold Facts.TS.add rel Facts.TS.empty

let edges_dag = [ (1, 2); (1, 3); (2, 4); (3, 4); (4, 5) ]
let edges_cycle = [ (1, 2); (2, 3); (3, 1); (3, 4) ]

let test_naive_tc () =
  let result = Naive.query tc_program (edge_facts edges_dag) "path" in
  Alcotest.check facts_testable "naive tc"
    (set_of_relation (closure_of edges_dag))
    result

let test_seminaive_tc () =
  List.iter
    (fun edges ->
      let result = Seminaive.query tc_program (edge_facts edges) "path" in
      Alcotest.check facts_testable "seminaive tc"
        (set_of_relation (closure_of edges))
        result)
    [ edges_dag; edges_cycle ]

let test_seminaive_fewer_derivations () =
  let chain = List.init 30 (fun k -> (k, k + 1)) in
  let ns = Naive.fresh_stats () and ss = Seminaive.fresh_stats () in
  ignore (Naive.query ~stats:ns tc_program (edge_facts chain) "path");
  ignore (Seminaive.query ~stats:ss tc_program (edge_facts chain) "path");
  Alcotest.check Alcotest.bool
    (Fmt.str "seminaive derives less (naive %d, seminaive %d)"
       ns.Naive.derivations ss.Seminaive.derivations)
    true
    (ss.Seminaive.derivations * 3 < ns.Naive.derivations)

let test_topdown_tc () =
  let result =
    Topdown.query tc_program (edge_facts edges_dag) "path" 2
  in
  Alcotest.check facts_testable "SLD tc on DAG"
    (set_of_relation (closure_of edges_dag))
    (Facts.TS.of_list result)

let test_topdown_diverges_on_cycle () =
  let budget = { Topdown.max_steps = 50_000; max_depth = 10_000 } in
  match Topdown.query ~budget tc_program (edge_facts edges_cycle) "path" 2 with
  | _ -> Alcotest.fail "expected Budget_exhausted on cyclic data"
  | exception Topdown.Budget_exhausted _ -> ()

let test_safety () =
  let unsafe = rule (atom "p" [ var "X" ]) [ Neg (atom "q" [ var "X" ]) ] in
  (match check_safe [ unsafe ] with
  | _ -> Alcotest.fail "expected Unsafe_rule"
  | exception Unsafe_rule _ -> ());
  Alcotest.check
    Alcotest.(list string)
    "unsafe vars" [ "X" ] (unsafe_vars unsafe)

let test_stratified_negation () =
  (* unreachable(X,Y) :- node(X), node(Y), not path(X,Y). *)
  let program =
    tc_program
    @ [
        rule
          (atom "unreachable" [ var "X"; var "Y" ])
          [
            Pos (atom "node" [ var "X" ]);
            Pos (atom "node" [ var "Y" ]);
            Neg (atom "path" [ var "X"; var "Y" ]);
          ];
      ]
  in
  let edb =
    List.fold_left
      (fun st n -> Facts.add st "node" (Tuple.make1 (i n)))
      (edge_facts [ (1, 2); (2, 3) ])
      [ 1; 2; 3 ]
  in
  let result = Seminaive.query program edb "unreachable" in
  Alcotest.check Alcotest.bool "3 cannot reach 1" true
    (Facts.TS.mem (tuple2 3 1) result);
  Alcotest.check Alcotest.bool "1 reaches 3" false
    (Facts.TS.mem (tuple2 1 3) result);
  (* every node is "unreachable from itself" here (no self loops) *)
  Alcotest.check Alcotest.int "cardinality" (9 - 3) (Facts.TS.cardinal result)

let test_not_stratifiable () =
  let program = [ rule (atom "p" [ var "X" ]) [ Pos (atom "q" [ var "X" ]); Neg (atom "p" [ var "X" ]) ] ] in
  match Stratify.strata program with
  | _ -> Alcotest.fail "expected Not_stratifiable"
  | exception Stratify.Not_stratifiable _ -> ()

let test_strata_order () =
  let program =
    tc_program
    @ [
        rule
          (atom "unreachable" [ var "X"; var "Y" ])
          [
            Pos (atom "node" [ var "X" ]);
            Pos (atom "node" [ var "Y" ]);
            Neg (atom "path" [ var "X"; var "Y" ]);
          ];
      ]
  in
  let layers = Stratify.layers program in
  Alcotest.check Alcotest.int "two layers" 2 (List.length layers);
  Alcotest.check Alcotest.bool "path first" true
    (List.for_all (fun r -> r.head.pred = "path") (List.nth layers 0))

let test_magic_answers () =
  (* reachable from node 1 *)
  let q = atom "path" [ const (i 1); var "Y" ] in
  let full = Seminaive.query tc_program (edge_facts edges_dag) "path" in
  let expected = Facts.TS.filter (fun t -> Value.equal (Tuple.get t 0) (i 1)) full in
  let got = Magic.answer tc_program (edge_facts edges_dag) q in
  Alcotest.check facts_testable "magic = filtered full" expected got

let test_magic_is_selective () =
  (* on a forest of two big chains, querying inside one chain must not
     derive paths of the other chain *)
  let chain_a = List.init 40 (fun k -> (k, k + 1)) in
  let chain_b = List.init 40 (fun k -> (1000 + k, 1001 + k)) in
  let edb = edge_facts (chain_a @ chain_b) in
  let sm = Seminaive.fresh_stats () and sf = Seminaive.fresh_stats () in
  ignore (Seminaive.query ~stats:sf tc_program edb "path");
  let q = atom "path" [ const (i 1020); var "Y" ] in
  ignore (Magic.answer ~stats:sm tc_program edb q);
  Alcotest.check Alcotest.bool
    (Fmt.str "magic derives far less (full %d, magic %d)" sf.Seminaive.derivations
       sm.Seminaive.derivations)
    true
    (sm.Seminaive.derivations * 5 < sf.Seminaive.derivations)

let test_magic_second_arg_bound () =
  (* fb adornment: which nodes reach node 5? *)
  let q = atom "path" [ var "X"; const (i 5) ] in
  let full = Seminaive.query tc_program (edge_facts edges_dag) "path" in
  let expected =
    Facts.TS.filter (fun t -> Value.equal (Tuple.get t 1) (i 5)) full
  in
  let got = Magic.answer tc_program (edge_facts edges_dag) q in
  Alcotest.check facts_testable "fb adornment" expected got

let test_magic_both_bound () =
  let q = atom "path" [ const (i 1); const (i 5) ] in
  let got = Magic.answer tc_program (edge_facts edges_dag) q in
  Alcotest.check Alcotest.int "bb adornment: provable" 1 (Facts.TS.cardinal got);
  let no = Magic.answer tc_program (edge_facts edges_dag) (atom "path" [ const (i 5); const (i 1) ]) in
  Alcotest.check Alcotest.int "bb adornment: unprovable" 0 (Facts.TS.cardinal no)

let test_magic_cyclic () =
  let q = atom "path" [ const (i 1); var "Y" ] in
  let full = Seminaive.query tc_program (edge_facts edges_cycle) "path" in
  let expected = Facts.TS.filter (fun t -> Value.equal (Tuple.get t 0) (i 1)) full in
  let got = Magic.answer tc_program (edge_facts edges_cycle) q in
  Alcotest.check facts_testable "magic on cyclic data" expected got

(* ------------------------------------------------------------------ *)
(* Translations (§3.4 lemma) *)

let test_constructor_to_datalog () =
  let open Dc_core in
  let db = Database.create () in
  let schema = Constructor.binary_schema Value.TInt in
  Database.declare db "Edge" schema;
  Database.set db "Edge"
    (Relation.of_pairs schema (List.map (fun (a, b) -> (i a, i b)) edges_cycle));
  Database.define_constructor db (Constructor.transitive_closure ~ty:Value.TInt ());
  let app = Dc_calculus.Ast.(Construct (Rel "Edge", "tc", [])) in
  let expected = Database.query db app in
  let ctx =
    {
      Translate.lookup_constructor = Database.constructor db;
      schema_of =
        (fun n ->
          match Database.get db n with
          | r -> Some (Relation.schema r)
          | exception Database.Error _ -> None);
    }
  in
  let program, query_pred = Translate.of_application ctx app in
  let edb =
    Facts.of_relation "Edge" (Database.get db "Edge") (Facts.empty ())
  in
  let got = Seminaive.query program edb query_pred in
  Alcotest.check facts_testable "translated tc agrees"
    (set_of_relation expected) got

let test_mutual_constructor_to_datalog () =
  let open Dc_core in
  let db = Database.create () in
  Database.declare db "Infront" (Constructor.infront_schema Value.TStr);
  Database.declare db "Ontop" (Constructor.ontop_schema Value.TStr);
  let p a b = Tuple.make2 (Value.Str a) (Value.Str b) in
  Database.insert_all db "Infront" [ p "lamp" "vase"; p "table" "chair" ];
  Database.insert_all db "Ontop" [ p "vase" "table" ];
  let ahead, above = Constructor.ahead_above () in
  Database.define_constructors db [ ahead; above ];
  let app =
    Dc_calculus.Ast.(Construct (Rel "Infront", "ahead", [ Arg_range (Rel "Ontop") ]))
  in
  let expected = Database.query db app in
  let ctx =
    {
      Translate.lookup_constructor = Database.constructor db;
      schema_of =
        (fun n ->
          match Database.get db n with
          | r -> Some (Relation.schema r)
          | exception Database.Error _ -> None);
    }
  in
  let program, query_pred = Translate.of_application ctx app in
  let edb =
    Facts.of_relation "Infront" (Database.get db "Infront")
      (Facts.of_relation "Ontop" (Database.get db "Ontop") (Facts.empty ()))
  in
  let got = Seminaive.query program edb query_pred in
  Alcotest.check facts_testable "translated mutual recursion agrees"
    (set_of_relation expected) got

let test_stratified_constructor_to_datalog () =
  (* a constructor with NOT over a lower-SCC application translates to a
     stratified program and agrees with the fixpoint evaluation *)
  let open Dc_core in
  let schema = Constructor.binary_schema Value.TInt in
  let db = Database.create () in
  Database.declare db "Edge" schema;
  Database.declare db "Pairs" schema;
  Database.set db "Edge"
    (Relation.of_pairs schema (List.map (fun (a, b) -> (i a, i b)) [ (1, 2); (2, 3) ]));
  Database.set db "Pairs"
    (Relation.of_pairs schema
       (List.map (fun (a, b) -> (i a, i b)) [ (1, 3); (3, 1); (2, 2) ]));
  Database.define_constructor db (Constructor.transitive_closure ~ty:Value.TInt ());
  let non_desc =
    {
      Dc_calculus.Defs.con_name = "non_desc";
      con_formal = "Rel";
      con_formal_schema = schema;
      con_params = [];
      con_result = schema;
      con_agg = None;
      con_body =
        Dc_calculus.Ast.
          [
            branch
              [ ("p", Rel "Rel") ]
              ~where:
                (Not
                   (Member
                      ( [ field "p" "src"; field "p" "dst" ],
                        Construct (Rel "Edge", "tc", []) )));
          ];
    }
  in
  Database.define_constructor db non_desc;
  let app = Dc_calculus.Ast.(Construct (Rel "Pairs", "non_desc", [])) in
  let expected = Database.query db app in
  let ctx =
    {
      Translate.lookup_constructor = Database.constructor db;
      schema_of =
        (fun n ->
          match Database.get db n with
          | r -> Some (Relation.schema r)
          | exception Database.Error _ -> None);
    }
  in
  let program, pred = Translate.of_application ctx app in
  Alcotest.check Alcotest.bool "program contains a negative literal" true
    (List.exists
       (fun r ->
         List.exists
           (function
             | Neg _ -> true
             | Pos _ | Test _ -> false)
           r.body)
       program);
  let edb =
    Facts.of_relation "Edge" (Database.get db "Edge")
      (Facts.of_relation "Pairs" (Database.get db "Pairs") (Facts.empty ()))
  in
  let got = Seminaive.query program edb pred in
  Alcotest.check facts_testable "stratified translation agrees"
    (set_of_relation expected) got

let test_datalog_to_constructors () =
  let open Dc_core in
  let schema_of = function
    | "edge" | "path" -> bin
    | p -> Alcotest.failf "unexpected predicate %s" p
  in
  let defs, bottoms = Translate.to_constructors schema_of tc_program in
  let db = Database.create () in
  Database.declare db "edge" bin;
  Database.set db "edge"
    (Relation.of_pairs bin (List.map (fun (a, b) -> (i a, i b)) edges_dag));
  List.iter (fun (n, s) -> Database.declare db n s) bottoms;
  Database.define_constructors db defs;
  let got =
    Database.query db
      Dc_calculus.Ast.(Construct (Rel "__bottom_path", "path", []))
  in
  Alcotest.check facts_testable "datalog->constructors agrees"
    (set_of_relation (closure_of edges_dag))
    (set_of_relation got)

(* ------------------------------------------------------------------ *)
(* Built-in tests, ground goals, negation as failure, deep strata *)

let test_builtin_comparisons () =
  (* forward(X,Y) :- edge(X,Y), X < Y. *)
  let program =
    [
      rule
        (atom "forward" [ var "X"; var "Y" ])
        [
          Pos (atom "edge" [ var "X"; var "Y" ]);
          Test (Dc_calculus.Ast.Lt, var "X", var "Y");
        ];
    ]
  in
  let result =
    Seminaive.query program (edge_facts [ (1, 2); (3, 2); (2, 2) ]) "forward"
  in
  Alcotest.check facts_testable "X < Y"
    (Facts.TS.singleton (tuple2 1 2))
    result

let test_topdown_ground_goal () =
  let edb = edge_facts edges_dag in
  let yes = Topdown.solve tc_program edb (atom "path" [ const (i 1); const (i 5) ]) in
  Alcotest.check Alcotest.int "provable ground goal" 1 (List.length yes);
  let no = Topdown.solve tc_program edb (atom "path" [ const (i 5); const (i 1) ]) in
  Alcotest.check Alcotest.int "unprovable ground goal" 0 (List.length no)

let test_topdown_negation_as_failure () =
  (* blocked(X,Y) :- edge(X,Y), not good(Y).  good is an EDB predicate. *)
  let program =
    [
      rule
        (atom "blocked" [ var "X"; var "Y" ])
        [ Pos (atom "edge" [ var "X"; var "Y" ]); Neg (atom "good" [ var "Y" ]) ];
    ]
  in
  let edb =
    Facts.add (edge_facts [ (1, 2); (2, 3) ]) "good" (Tuple.make1 (i 2))
  in
  let result = Topdown.query program edb "blocked" 2 in
  Alcotest.check facts_testable "NAF"
    (Facts.TS.singleton (tuple2 2 3))
    (Facts.TS.of_list result)

let test_three_strata () =
  (* path (stratum 0), unreachable (1: not path), isolated (2: sources with
     no reachable target that is not unreachable from everything...) keep it
     simple: doubly_dead(X,Y) :- unreachable(X,Y), not path(Y,X). *)
  let program =
    tc_program
    @ [
        rule
          (atom "unreachable" [ var "X"; var "Y" ])
          [
            Pos (atom "node" [ var "X" ]);
            Pos (atom "node" [ var "Y" ]);
            Neg (atom "path" [ var "X"; var "Y" ]);
          ];
        rule
          (atom "mutually_unreachable" [ var "X"; var "Y" ])
          [
            Pos (atom "unreachable" [ var "X"; var "Y" ]);
            Neg (atom "path" [ var "Y"; var "X" ]);
          ];
      ]
  in
  let edb =
    List.fold_left
      (fun st n -> Facts.add st "node" (Tuple.make1 (i n)))
      (edge_facts [ (1, 2); (3, 4) ])
      [ 1; 2; 3; 4 ]
  in
  let result = Seminaive.query program edb "mutually_unreachable" in
  Alcotest.check Alcotest.bool "1 and 3 mutually unreachable" true
    (Facts.TS.mem (tuple2 1 3) result);
  Alcotest.check Alcotest.bool "1 -> 2 not included" false
    (Facts.TS.mem (tuple2 1 2) result);
  (* naive agrees on the stratified program *)
  let result_naive = Naive.query program edb "mutually_unreachable" in
  Alcotest.check facts_testable "naive = seminaive on strata" result
    result_naive

(* ------------------------------------------------------------------ *)
(* Tabled evaluation *)

let test_tabled_tc () =
  List.iter
    (fun edges ->
      let result = Tabled.query tc_program (edge_facts edges) "path" 2 in
      Alcotest.check facts_testable "tabled tc"
        (set_of_relation (closure_of edges))
        result)
    [ edges_dag; edges_cycle ]

let test_tabled_terminates_on_cycle () =
  (* plain SLD diverges here (see above); tabling terminates *)
  let result = Tabled.query tc_program (edge_facts edges_cycle) "path" 2 in
  Alcotest.check Alcotest.int "complete closure of the cycle component"
    (Facts.TS.cardinal (set_of_relation (closure_of edges_cycle)))
    (Facts.TS.cardinal result)

let test_tabled_goal_directed () =
  (* bound query on a forest: only the relevant chain's subgoals are
     tabled *)
  let chain_a = List.init 30 (fun k -> (k, k + 1)) in
  let chain_b = List.init 30 (fun k -> (1000 + k, 1001 + k)) in
  let edb = edge_facts (chain_a @ chain_b) in
  let stats = Tabled.fresh_stats () in
  let result =
    Tabled.solve ~stats tc_program edb (atom "path" [ const (i 0); var "Y" ])
  in
  Alcotest.check Alcotest.int "answers" 30 (Facts.TS.cardinal result);
  Alcotest.check Alcotest.bool
    (Fmt.str "tables stay near the relevant chain (%d calls)"
       stats.Tabled.calls)
    true
    (stats.Tabled.calls <= 32)

let test_tabled_repeated_vars () =
  (* path(X, X): only cycle members *)
  let result =
    Tabled.solve tc_program (edge_facts edges_cycle)
      (atom "path" [ var "X"; var "X" ])
  in
  Alcotest.check facts_testable "self-reachable nodes"
    (Facts.TS.of_list [ tuple2 1 1; tuple2 2 2; tuple2 3 3 ])
    result

let prop_tabled_agrees =
  QCheck.Test.make ~name:"tabled = seminaive" ~count:60
    QCheck.(
      list_of_size Gen.(int_bound 25)
        (pair (QCheck.int_bound 8) (QCheck.int_bound 8)))
    (fun edges ->
      let edb = edge_facts edges in
      Facts.TS.equal
        (Tabled.query tc_program edb "path" 2)
        (Seminaive.query tc_program edb "path"))

let prop_facts_lookup =
  (* indexed lookup = linear filter *)
  QCheck.Test.make ~name:"Facts.lookup = filter" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_bound 30) (pair (int_bound 5) (int_bound 5)))
        (pair (int_bound 5) (QCheck.bool)))
    (fun (edges, (key, on_src)) ->
      let store = edge_facts edges in
      let positions = if on_src then [ 0 ] else [ 1 ] in
      let via_index =
        Facts.TS.of_list
          (Facts.lookup store "edge" positions (Tuple.make1 (i key)))
      in
      let via_filter =
        Facts.TS.filter
          (fun t -> Value.equal (Tuple.get t (if on_src then 0 else 1)) (i key))
          (Facts.find store "edge")
      in
      Facts.TS.equal via_index via_filter)

(* Property: on random graphs, all four evaluation routes agree. *)
let arb_edges =
  QCheck.(
    list_of_size Gen.(int_bound 25)
      (pair (QCheck.int_bound 8) (QCheck.int_bound 8)))

let prop_engines_agree =
  QCheck.Test.make ~name:"naive = seminaive = algebra tc" ~count:60 arb_edges
    (fun edges ->
      let edb = edge_facts edges in
      let n = Naive.query tc_program edb "path" in
      let s = Seminaive.query tc_program edb "path" in
      let a = set_of_relation (closure_of edges) in
      Facts.TS.equal n s && Facts.TS.equal s a)

let prop_magic_agrees =
  QCheck.Test.make ~name:"magic = filtered seminaive" ~count:60
    QCheck.(pair arb_edges (QCheck.int_bound 8))
    (fun (edges, start) ->
      QCheck.assume (edges <> []);
      let edb = edge_facts edges in
      let full = Seminaive.query tc_program edb "path" in
      let expected =
        Facts.TS.filter (fun t -> Value.equal (Tuple.get t 0) (i start)) full
      in
      let got = Magic.answer tc_program edb (atom "path" [ const (i start); var "Y" ]) in
      Facts.TS.equal expected got)

let prop_translation_agrees =
  QCheck.Test.make ~name:"constructor tc = datalog tc (lemma 3.4)" ~count:40
    arb_edges (fun edges ->
      let open Dc_core in
      let schema = Constructor.binary_schema Value.TInt in
      let db = Database.create () in
      Database.declare db "Edge" schema;
      Database.set db "Edge"
        (Relation.of_pairs schema (List.map (fun (a, b) -> (i a, i b)) edges));
      Database.define_constructor db
        (Constructor.transitive_closure ~ty:Value.TInt ());
      let app = Dc_calculus.Ast.(Construct (Rel "Edge", "tc", [])) in
      let expected = set_of_relation (Database.query db app) in
      let ctx =
        {
          Translate.lookup_constructor = Database.constructor db;
          schema_of =
            (fun n ->
              match Database.get db n with
              | r -> Some (Relation.schema r)
              | exception Database.Error _ -> None);
        }
      in
      let program, query_pred = Translate.of_application ctx app in
      let edb = Facts.of_relation "Edge" (Database.get db "Edge") (Facts.empty ()) in
      Facts.TS.equal expected (Seminaive.query program edb query_pred))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dc_datalog"
    [
      ( "bottom-up",
        [
          Alcotest.test_case "naive tc" `Quick test_naive_tc;
          Alcotest.test_case "seminaive tc" `Quick test_seminaive_tc;
          Alcotest.test_case "seminaive cheaper" `Quick
            test_seminaive_fewer_derivations;
        ] );
      ( "top-down",
        [
          Alcotest.test_case "SLD on DAG" `Quick test_topdown_tc;
          Alcotest.test_case "SLD diverges on cycle" `Quick
            test_topdown_diverges_on_cycle;
          Alcotest.test_case "ground goals" `Quick test_topdown_ground_goal;
          Alcotest.test_case "negation as failure" `Quick
            test_topdown_negation_as_failure;
        ] );
      ( "builtins+strata",
        [
          Alcotest.test_case "comparisons" `Quick test_builtin_comparisons;
          Alcotest.test_case "three strata" `Quick test_three_strata;
        ] );
      ( "tabled",
        [
          Alcotest.test_case "tc" `Quick test_tabled_tc;
          Alcotest.test_case "terminates on cycle" `Quick
            test_tabled_terminates_on_cycle;
          Alcotest.test_case "goal-directed" `Quick test_tabled_goal_directed;
          Alcotest.test_case "repeated variables" `Quick
            test_tabled_repeated_vars;
        ] );
      ( "safety+strata",
        [
          Alcotest.test_case "safety check" `Quick test_safety;
          Alcotest.test_case "stratified negation" `Quick
            test_stratified_negation;
          Alcotest.test_case "odd cycle rejected" `Quick test_not_stratifiable;
          Alcotest.test_case "layer order" `Quick test_strata_order;
        ] );
      ( "magic",
        [
          Alcotest.test_case "answers" `Quick test_magic_answers;
          Alcotest.test_case "selectivity" `Quick test_magic_is_selective;
          Alcotest.test_case "second argument bound" `Quick
            test_magic_second_arg_bound;
          Alcotest.test_case "both arguments bound" `Quick
            test_magic_both_bound;
          Alcotest.test_case "cyclic data" `Quick test_magic_cyclic;
        ] );
      ( "translate",
        [
          Alcotest.test_case "constructor -> datalog" `Quick
            test_constructor_to_datalog;
          Alcotest.test_case "mutual recursion -> datalog" `Quick
            test_mutual_constructor_to_datalog;
          Alcotest.test_case "stratified negation -> datalog" `Quick
            test_stratified_constructor_to_datalog;
          Alcotest.test_case "datalog -> constructors" `Quick
            test_datalog_to_constructors;
        ] );
      ( "properties",
        qcheck
          [
            prop_engines_agree; prop_magic_agrees; prop_translation_agrees;
            prop_facts_lookup; prop_tabled_agrees;
          ] );
    ]
