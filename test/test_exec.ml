(* Tests for Dc_exec: the shared physical operator IR.

   - unit tests for the join-order rewrite (the one greedy rule that
     replaced the per-engine heuristics);
   - executor semantics: union/distinct/diff counters, anti-joins,
     delta substitution by running one pipeline under different contexts;
   - differential tests via the shared seeded oracle (test/oracle.ml):
     naive, semi-naive, magic, tabled and a hand-rolled direct-IR
     fixpoint must agree on recursive programs over random EDBs;
   - EXPLAIN golden output for examples/same_generation.dbpl. *)

open Dc_relation
open Dc_datalog
open Syntax

module Ir = Dc_exec.Ir
module Join_order = Dc_exec.Join_order
module TS = Facts.TS

let i n = Value.Int n
let tuple2 a b = Tuple.make2 (i a) (i b)
let facts_testable = Oracle.facts_testable

(* ------------------------------------------------------------------ *)
(* Join_order *)

let cand ?(deps = []) ?card keys_given = { Join_order.deps; card; keys_given }

let no_keys _ = 0

let check_order msg expected cands =
  Alcotest.(check (list int)) msg expected (Join_order.order cands)

let test_order_smallest_card_first () =
  check_order "smallest known cardinality first" [ 1; 0; 2 ]
    [
      cand ~card:100 no_keys;
      cand ~card:5 no_keys;
      cand no_keys (* unknown sorts last *);
    ]

let test_order_keys_beat_card () =
  (* once 2 (tiny) is placed, 1 can probe an index: the keyed probe wins
     over 0's smaller cardinality *)
  check_order "keyed probe beats smaller scan" [ 2; 1; 0 ]
    [
      cand ~card:10 no_keys;
      cand ~card:1000 (fun placed -> if List.mem 2 placed then 1 else 0);
      cand ~card:2 no_keys;
    ]

let test_order_delta_hint_first () =
  (* the semi-naive delta is marked card 0: scanned first, fulls probed *)
  check_order "delta scanned first" [ 1; 0; 2 ]
    [
      cand ~card:50 (fun placed -> List.length placed);
      cand ~card:0 no_keys;
      cand ~card:50 (fun placed -> List.length placed);
    ]

let test_order_stable_on_ties () =
  check_order "program order on full tie" [ 0; 1; 2 ]
    [ cand ~card:7 no_keys; cand ~card:7 no_keys;
      cand ~card:7 no_keys ]

let test_order_respects_deps () =
  check_order "dependencies are hard constraints" [ 1; 0 ]
    [ cand ~deps:[ 1 ] ~card:1 no_keys; cand ~card:100 no_keys ]

let test_order_unsatisfiable_deps () =
  (* mutual correlation: fall back to program order *)
  check_order "mutual deps keep program order" [ 0; 1 ]
    [ cand ~deps:[ 1 ] no_keys; cand ~deps:[ 0 ] no_keys ]

(* ------------------------------------------------------------------ *)
(* Executor semantics through the rule compiler *)

let compile = Oracle.compile

let unary_facts pred l = List.map (fun n -> (pred, Tuple.make1 (i n))) l

let test_union_distinct_diff_counters () =
  (* a(X) :- r(X).  a(X) :- s(X).   Diff(Distinct(Union)) except t *)
  let r1 = (compile (rule (atom "a" [ var "X" ]) [ Pos (atom "r" [ var "X" ]) ])).Engine.pipeline in
  let r2 = (compile (rule (atom "a" [ var "X" ]) [ Pos (atom "s" [ var "X" ]) ])).Engine.pipeline in
  let u = Ir.union ~label:(lazy "a") [ r1; r2 ] in
  let d = Ir.distinct ~label:(lazy "a") u in
  let pipe = Ir.diff ~label:(lazy "a") ~except:(Ir.Named "t") d in
  let store =
    Facts.of_list
      (unary_facts "r" [ 1; 2 ] @ unary_facts "s" [ 2; 3 ] @ unary_facts "t" [ 3 ])
  in
  let out = ref TS.empty in
  Ir.run (Engine.store_ctx store) pipe (fun t -> out := TS.add t !out);
  Alcotest.check facts_testable "diff(distinct(union)) result"
    (TS.of_list [ Tuple.make1 (i 1); Tuple.make1 (i 2) ])
    !out;
  Alcotest.(check int) "union emits duplicates" 4 u.Ir.tc.Ir.rows;
  Alcotest.(check int) "distinct dedups" 3 d.Ir.tc.Ir.rows;
  Alcotest.(check int) "diff probes per distinct tuple" 3 pipe.Ir.tc.Ir.probes;
  Alcotest.(check int) "diff drops the known tuple" 2 pipe.Ir.tc.Ir.rows

let test_negation_anti_join () =
  (* q(X) :- r(X), not t(X). *)
  let c =
    compile
      (rule (atom "q" [ var "X" ])
         [ Pos (atom "r" [ var "X" ]); Neg (atom "t" [ var "X" ]) ])
  in
  let store = Facts.of_list (unary_facts "r" [ 1; 2; 3 ] @ unary_facts "t" [ 2 ]) in
  let out = ref TS.empty in
  Ir.run (Engine.store_ctx store) c.Engine.pipeline (fun t -> out := TS.add t !out);
  Alcotest.check facts_testable "anti-join"
    (TS.of_list [ Tuple.make1 (i 1); Tuple.make1 (i 3) ])
    !out

let test_delta_substitution () =
  (* q(X,Z) :- e(X,Y), e(Y,Z): one pipeline, two contexts.  The delta run
     reads Δe for the first occurrence without rebuilding anything. *)
  let joined =
    Engine.compile_rule ~reorder:false
      ~source:(fun idx (a : atom) ->
        Engine.Static
          (Ir.Named (if idx = 0 then Engine.delta_name a.pred else a.pred)))
      ~neg_source:(fun (a : atom) -> Ir.Named a.pred)
      ~label:(lazy "q(X,Z) :- Δe(X,Y), e(Y,Z)")
      (rule
         (atom "q" [ var "X"; var "Z" ])
         [
           Pos (atom "e" [ var "X"; var "Y" ]);
           Pos (atom "e" [ var "Y"; var "Z" ]);
         ])
  in
  let full = Facts.of_list [ ("e", tuple2 1 2); ("e", tuple2 2 3); ("e", tuple2 3 4) ] in
  let run_with delta =
    let out = ref TS.empty in
    Ir.run
      (Engine.delta_ctx ~full ~delta)
      joined.Engine.pipeline
      (fun t -> out := TS.add t !out);
    !out
  in
  (* delta = {3→4}: only pairs starting from the delta edge *)
  Alcotest.check facts_testable "first delta"
    TS.empty
    (run_with (Facts.of_list [ ("e", tuple2 3 4) ]));
  (* delta = {1→2}: 1→2 joined with full 2→3 *)
  Alcotest.check facts_testable "second delta"
    (TS.of_list [ tuple2 1 3 ])
    (run_with (Facts.of_list [ ("e", tuple2 1 2) ]));
  (* counters accumulated across both runs of the same pipeline *)
  Alcotest.(check int) "project counts both runs" 1
    joined.Engine.pipeline.Ir.tc.Ir.rows

(* ------------------------------------------------------------------ *)
(* Differential: all engines against each other, via the shared oracle *)

let edb_of_relation pred rel = Facts.of_relation pred rel (Facts.empty ())

let graph_edb ~seed ~nodes ~edges =
  edb_of_relation "edge" (Dc_workload.Graph_gen.random_graph ~seed ~nodes ~edges)

let test_differential_fixed () =
  List.iter
    (fun (msg, program) ->
      let edb = graph_edb ~seed:42 ~nodes:12 ~edges:24 in
      let reference = Oracle.check_engines_agree ~msg program edb "path" 2 in
      (* pick a start node that actually reaches something *)
      match TS.choose_opt reference with
      | Some t ->
        Oracle.check_bound_goal_engines ~msg program edb "path" (Tuple.get t 0)
          reference
      | None -> ())
    [
      ("linear tc", Oracle.tc_linear);
      ("left-linear tc", Oracle.tc_left_linear);
      ("nonlinear tc", Oracle.tc_nonlinear);
    ]

let test_differential_same_generation () =
  let up, flat, down = Dc_workload.Graph_gen.same_generation_tree 4 in
  let edb =
    Facts.of_relation "up" up
      (Facts.of_relation "flat" flat (Facts.of_relation "down" down (Facts.empty ())))
  in
  let reference =
    Oracle.check_engines_agree ~msg:"same generation" Oracle.sg_program edb "sg" 2
  in
  match TS.choose_opt reference with
  | Some t ->
    Oracle.check_bound_goal_engines ~msg:"same generation" Oracle.sg_program edb
      "sg" (Tuple.get t 0) reference
  | None -> Alcotest.fail "same-generation tree produced no pairs"

let test_differential_mutual () =
  let edb =
    Facts.add
      (graph_edb ~seed:3 ~nodes:10 ~edges:20)
      "start"
      (Tuple.make1 (Dc_workload.Graph_gen.node 0))
  in
  ignore
    (Oracle.check_engines_agree ~msg:"mutual even" Oracle.mutual_program edb
       "even" 1);
  ignore
    (Oracle.check_engines_agree ~msg:"mutual odd" Oracle.mutual_program edb
       "odd" 1)

(* Fixed seeds through the full seeded-case generator: every shape the
   oracle can draw is exercised deterministically on every run. *)
let test_oracle_fixed_seeds () =
  for seed = 0 to 47 do
    Oracle.check_seed seed
  done

(* Randomized: the same seeded oracle over arbitrary seeds.  On failure
   QCheck reports the seed as the counterexample, and every Alcotest
   message inside [check_seed] carries it too. *)
let prop_oracle_seeds =
  QCheck.Test.make ~count:60 ~name:"seeded oracle: engines agree"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      Oracle.check_seed seed;
      true)

(* ------------------------------------------------------------------ *)
(* EXPLAIN golden output *)

let find_file candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail (Fmt.str "not found: %s" (List.hd candidates))

let read_file path = In_channel.with_open_text path In_channel.input_all

let test_explain_golden () =
  let program =
    find_file
      [
        "../examples/same_generation.dbpl"; "examples/same_generation.dbpl";
        "../../examples/same_generation.dbpl";
        "../../../examples/same_generation.dbpl";
        "/root/repo/examples/same_generation.dbpl";
      ]
  in
  let expected =
    find_file
      [
        "explain_same_generation.expected"; "test/explain_same_generation.expected";
        "../test/explain_same_generation.expected";
        "/root/repo/test/explain_same_generation.expected";
      ]
  in
  let _, out = Dc_lang.Elaborate.run_string (read_file program) in
  Alcotest.(check string) "EXPLAIN output on same_generation.dbpl"
    (read_file expected) out

(* Wall-clock readings make EXPLAIN ANALYZE output nondeterministic; the
   golden comparison replaces every [<digits>[.<digits>]ms] with [<N>ms]
   and keeps everything else (tree shape, rows, probes, round deltas)
   byte-exact. *)
let normalize_times s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let is_digit c = c >= '0' && c <= '9' in
  let i = ref 0 in
  while !i < n do
    if is_digit s.[!i] then begin
      let j = ref !i in
      while !j < n && is_digit s.[!j] do incr j done;
      if !j < n && s.[!j] = '.' then begin
        incr j;
        while !j < n && is_digit s.[!j] do incr j done
      end;
      if !j + 1 < n && s.[!j] = 'm' && s.[!j + 1] = 's' then begin
        Buffer.add_string b "<N>ms";
        i := !j + 2
      end
      else begin
        Buffer.add_string b (String.sub s !i (!j - !i));
        i := !j
      end
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* Substring replace, leftmost-first. *)
let replace_all ~sub ~by s =
  let ls = String.length sub in
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    if !i + ls <= n && String.sub s !i ls = sub then begin
      Buffer.add_string b by;
      i := !i + ls
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let test_explain_analyze_golden () =
  let program =
    find_file
      [
        "../examples/same_generation.dbpl"; "examples/same_generation.dbpl";
        "../../examples/same_generation.dbpl";
        "../../../examples/same_generation.dbpl";
        "/root/repo/examples/same_generation.dbpl";
      ]
  in
  let expected =
    find_file
      [
        "explain_analyze_same_generation.expected";
        "test/explain_analyze_same_generation.expected";
        "../test/explain_analyze_same_generation.expected";
        "/root/repo/test/explain_analyze_same_generation.expected";
      ]
  in
  let src =
    replace_all ~sub:"EXPLAIN " ~by:"EXPLAIN ANALYZE " (read_file program)
  in
  (* EXPLAIN ANALYZE sticky-enables metrics collection: restore so the
     remaining tests in this binary see the configured state *)
  let saved = Dc_obs.Obs.on () in
  let _, out =
    Fun.protect
      ~finally:(fun () -> Dc_obs.Obs.set_enabled saved)
      (fun () -> Dc_lang.Elaborate.run_string src)
  in
  Alcotest.(check string) "EXPLAIN ANALYZE output, times normalized"
    (read_file expected) (normalize_times out)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dc_exec"
    [
      ( "join order",
        [
          Alcotest.test_case "smallest card first" `Quick
            test_order_smallest_card_first;
          Alcotest.test_case "keys beat card" `Quick test_order_keys_beat_card;
          Alcotest.test_case "delta hint first" `Quick
            test_order_delta_hint_first;
          Alcotest.test_case "stable on ties" `Quick test_order_stable_on_ties;
          Alcotest.test_case "respects deps" `Quick test_order_respects_deps;
          Alcotest.test_case "unsatisfiable deps" `Quick
            test_order_unsatisfiable_deps;
        ] );
      ( "executor",
        [
          Alcotest.test_case "union/distinct/diff counters" `Quick
            test_union_distinct_diff_counters;
          Alcotest.test_case "negation as anti-join" `Quick
            test_negation_anti_join;
          Alcotest.test_case "delta substitution" `Quick test_delta_substitution;
        ] );
      ( "differential",
        [
          Alcotest.test_case "fixed graphs, three tc shapes" `Quick
            test_differential_fixed;
          Alcotest.test_case "same generation" `Quick
            test_differential_same_generation;
          Alcotest.test_case "mutual recursion" `Quick test_differential_mutual;
          Alcotest.test_case "seeded oracle, fixed seeds" `Quick
            test_oracle_fixed_seeds;
          QCheck_alcotest.to_alcotest prop_oracle_seeds;
        ] );
      ( "explain",
        [
          Alcotest.test_case "golden output" `Quick test_explain_golden;
          Alcotest.test_case "analyze golden output" `Quick
            test_explain_analyze_golden;
        ] );
    ]
