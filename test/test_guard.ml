(* Tests for Dc_guard: the unified resource governor, the per-engine limit
   plumbing, deterministic fault injection, and — the PR's core guarantee —
   atomicity of aborted constructor expansions: a fixpoint stopped by any
   limit or injected fault leaves the database and the evaluation
   environment's index cache observationally unchanged. *)

open Dc_relation
open Dc_calculus
open Dc_core
module Guard = Dc_guard.Guard

let s v = Value.Str v
let pair a b = Tuple.make2 (s a) (s b)

let rel_testable = Alcotest.testable Relation.pp Relation.equal

let edge_schema = Constructor.binary_schema Value.TStr

let chain_rel n =
  Relation.of_list edge_schema
    (List.init n (fun i -> pair (Fmt.str "n%d" i) (Fmt.str "n%d" (i + 1))))

let db_with_chain ?limits n =
  let db = Database.create ?limits () in
  Database.declare db "Edge" edge_schema;
  Database.set db "Edge" (chain_rel n);
  Database.define_constructor db (Constructor.transitive_closure ());
  db

let chain_tc n =
  let tuples = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n do
      tuples := pair (Fmt.str "n%d" i) (Fmt.str "n%d" j) :: !tuples
    done
  done;
  Relation.of_list edge_schema !tuples

let tc_range = Ast.(Construct (Rel "Edge", "tc", []))

(* Run a thunk expected to trip; return the (reason, progress) pair. *)
let expect_exhausted name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Guard.Exhausted" name
  | exception Guard.Exhausted (reason, progress) -> (reason, progress)

(* ------------------------------------------------------------------ *)
(* Limit kinds through Database.query (declarative SET LIMIT path) *)

let test_rows_limit () =
  let db = db_with_chain ~limits:(Guard.limits ~rows:20 ()) 8 in
  let reason, progress =
    expect_exhausted "rows" (fun () -> Database.query db tc_range)
  in
  (match reason with
  | Guard.Rows_exhausted 20 -> ()
  | r -> Alcotest.failf "expected Rows_exhausted 20, got %a" Guard.pp_reason r);
  Alcotest.check Alcotest.bool "tripping operator labeled" true
    (progress.Guard.pg_operator <> None);
  Alcotest.check Alcotest.bool "row count includes tripping row" true
    (progress.Guard.pg_rows > 20)

let test_rounds_limit () =
  let db = db_with_chain ~limits:(Guard.limits ~rounds:2 ()) 8 in
  let reason, progress =
    expect_exhausted "rounds" (fun () -> Database.query db tc_range)
  in
  (match reason with
  | Guard.Rounds_exhausted 2 -> ()
  | r -> Alcotest.failf "expected Rounds_exhausted 2, got %a" Guard.pp_reason r);
  Alcotest.check
    Alcotest.(option string)
    "tripping site" (Some "fixpoint.round") progress.Guard.pg_site

let test_millis_limit () =
  let db = db_with_chain ~limits:(Guard.limits ~millis:0 ()) 8 in
  let reason, _ =
    expect_exhausted "millis" (fun () -> Database.query db tc_range)
  in
  match reason with
  | Guard.Deadline_exceeded 0 -> ()
  | r -> Alcotest.failf "expected Deadline_exceeded 0, got %a" Guard.pp_reason r

let test_cancellation () =
  let db = db_with_chain 8 in
  let g = Guard.create () in
  Guard.cancel g;
  let reason, _ =
    expect_exhausted "cancel" (fun () -> Database.query ~guard:g db tc_range)
  in
  (match reason with
  | Guard.Cancelled -> ()
  | r -> Alcotest.failf "expected Cancelled, got %a" Guard.pp_reason r);
  (* cancelling the shared none guard is a no-op *)
  Guard.cancel Guard.none;
  Alcotest.check rel_testable "none guard unaffected" (chain_tc 8)
    (Database.query ~guard:Guard.none db tc_range)

let test_set_limits_round_trip () =
  (* limits are per-evaluation: tripping once poisons nothing, and
     SET LIMIT NONE (no_limits) restores full evaluation *)
  let db = db_with_chain 6 in
  Database.set_limits db (Guard.limits ~rounds:1 ());
  ignore (expect_exhausted "limited" (fun () -> Database.query db tc_range));
  ignore (expect_exhausted "limited again" (fun () -> Database.query db tc_range));
  Database.set_limits db Guard.no_limits;
  Alcotest.check rel_testable "cleared limits evaluate fully" (chain_tc 6)
    (Database.query db tc_range)

(* ------------------------------------------------------------------ *)
(* Datalog engines *)

open Dc_datalog

let i n = Value.Int n
let tuple2 a b = Tuple.make2 (i a) (i b)

let edge_facts l =
  Facts.of_list (List.map (fun (a, b) -> ("edge", tuple2 a b)) l)

let tc_program =
  Syntax.
    [
      rule (atom "path" [ var "X"; var "Y" ])
        [ Pos (atom "edge" [ var "X"; var "Y" ]) ];
      rule
        (atom "path" [ var "X"; var "Z" ])
        [
          Pos (atom "edge" [ var "X"; var "Y" ]);
          Pos (atom "path" [ var "Y"; var "Z" ]);
        ];
    ]

let long_chain = List.init 40 (fun k -> (k, k + 1))

let check_rounds name reason =
  match reason with
  | Guard.Rounds_exhausted _ -> ()
  | r -> Alcotest.failf "%s: expected Rounds_exhausted, got %a" name Guard.pp_reason r

let test_datalog_round_limits () =
  let edb = edge_facts long_chain in
  let trip name f =
    check_rounds name
      (fst (expect_exhausted name (fun () -> f (Guard.create ~rounds:2 ()))))
  in
  trip "naive" (fun g -> Naive.query ~guard:g tc_program edb "path");
  trip "seminaive" (fun g -> Seminaive.query ~guard:g tc_program edb "path");
  trip "magic" (fun g ->
      Magic.answer ~guard:g tc_program edb
        Syntax.(atom "path" [ Const (i 0); var "Y" ]));
  trip "tabled" (fun g -> Tabled.query ~guard:g tc_program edb "path" 2)

let test_datalog_row_limits () =
  let edb = edge_facts long_chain in
  let trip name f =
    match fst (expect_exhausted name (fun () -> f (Guard.create ~rows:25 ()))) with
    | Guard.Rows_exhausted 25 -> ()
    | r -> Alcotest.failf "%s: expected Rows_exhausted, got %a" name Guard.pp_reason r
  in
  trip "seminaive" (fun g -> Seminaive.query ~guard:g tc_program edb "path");
  trip "tabled" (fun g -> Tabled.query ~guard:g tc_program edb "path" 2);
  trip "topdown" (fun g -> Topdown.query ~guard:g tc_program edb "path" 2)

let test_tabled_max_rounds_configurable () =
  (* the once hard-coded fuse is now an ordinary round budget *)
  let edb = edge_facts long_chain in
  check_rounds "tabled max_rounds"
    (fst
       (expect_exhausted "tabled max_rounds" (fun () ->
            Tabled.query ~max_rounds:2 tc_program edb "path" 2)));
  Alcotest.check Alcotest.int "generous max_rounds completes"
    (List.length long_chain * (List.length long_chain + 1) / 2)
    (Facts.TS.cardinal
       (Tabled.query ~max_rounds:Tabled.default_max_rounds tc_program edb
          "path" 2))

let test_topdown_budget_compat () =
  (* the legacy step budget still raises Budget_exhausted, while an
     external guard trips with the structured error *)
  let edb = edge_facts [ (1, 2); (2, 3); (3, 1) ] in
  let contains msg needle =
    let nh = String.length msg and nn = String.length needle in
    let rec probe i = i + nn <= nh && (String.sub msg i nn = needle || probe (i + 1)) in
    probe 0
  in
  (match
     Topdown.query
       ~budget:{ Topdown.max_steps = 1_000; max_depth = 1_000_000 }
       tc_program edb "path" 2
   with
  | _ -> Alcotest.fail "expected Budget_exhausted (steps)"
  | exception Topdown.Budget_exhausted msg ->
    Alcotest.check Alcotest.bool "message names resolution steps" true
      (contains msg "resolution steps"));
  match
    Topdown.query
      ~budget:{ Topdown.max_steps = 1_000_000; max_depth = 10 }
      tc_program edb "path" 2
  with
  | _ -> Alcotest.fail "expected Budget_exhausted (depth)"
  | exception Topdown.Budget_exhausted msg ->
    Alcotest.check Alcotest.bool "message names depth" true
      (contains msg "depth")

(* ------------------------------------------------------------------ *)
(* Structured error taxonomy (satellite: no ad-hoc failwith/invalid_arg) *)

let test_error_taxonomy () =
  let edb = edge_facts [ (1, 2) ] in
  (* tabled: negation is structurally unsupported *)
  let negated =
    Syntax.
      [
        rule
          (atom "p" [ var "X"; var "Y" ])
          [
            Pos (atom "edge" [ var "X"; var "Y" ]);
            Neg (atom "edge" [ var "Y"; var "X" ]);
          ];
      ]
  in
  (match Tabled.query negated edb "p" 2 with
  | _ -> Alcotest.fail "expected Engine.Error Unsupported"
  | exception Engine.Error (Engine.Unsupported, _) -> ());
  (* topdown: a comparison reached with an unbound side *)
  let nonground =
    Syntax.
      [
        rule
          (atom "q" [ var "X"; var "Y" ])
          [
            Pos (atom "edge" [ var "X"; var "Y" ]);
            Test (Dc_calculus.Ast.Lt, var "X", var "Z");
          ];
      ]
  in
  match Topdown.query nonground edb "q" 2 with
  | _ -> Alcotest.fail "expected Engine.Error Unsafe_rule"
  | exception Engine.Error (Engine.Unsafe_rule, _) -> ()

(* ------------------------------------------------------------------ *)
(* Failpoints *)

(* Reset on entry too: CI runs the suite with an ambient DC_FAILPOINT
   schedule armed, which these tests must not inherit. *)
let with_failpoints f =
  Guard.Failpoint.reset ();
  Fun.protect ~finally:Guard.Failpoint.reset f

let test_failpoint_api () =
  with_failpoints @@ fun () ->
  let db = db_with_chain 6 in
  Guard.Failpoint.arm "fixpoint.round" 2;
  let reason, progress =
    expect_exhausted "failpoint" (fun () -> Database.query db tc_range)
  in
  (match reason with
  | Guard.Fault_injected "fixpoint.round" -> ()
  | r -> Alcotest.failf "expected Fault_injected, got %a" Guard.pp_reason r);
  Alcotest.check
    Alcotest.(option string)
    "site recorded" (Some "fixpoint.round") progress.Guard.pg_site;
  (* one-shot: the site disarmed itself when it fired *)
  Alcotest.check Alcotest.bool "disarmed after firing" false
    !Guard.Failpoint.armed;
  Alcotest.check rel_testable "subsequent evaluation is unaffected"
    (chain_tc 6) (Database.query db tc_range)

let test_failpoint_install () =
  with_failpoints @@ fun () ->
  Guard.Failpoint.install "fixpoint.commit=3,exec.row";
  let pending = List.sort compare (Guard.Failpoint.pending ()) in
  Alcotest.check
    Alcotest.(list (pair string int))
    "parsed schedule"
    [ ("exec.row", 1); ("fixpoint.commit", 3) ]
    pending;
  Guard.Failpoint.reset ();
  Alcotest.check Alcotest.bool "reset disarms" false !Guard.Failpoint.armed;
  (match Guard.Failpoint.install "=oops" with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match Guard.Failpoint.install "exec.row=zero" with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Atomicity: an aborted expansion leaves the database and the index
   cache exactly as they were. *)

let all_sites =
  [ "exec.row"; "eval.branch"; "fixpoint.round"; "fixpoint.commit" ]

(* Evaluate [tc_range] in [env]; if it trips, assert the icache and the
   stored relations are observationally unchanged, then check a clean
   re-run still produces [expected]. *)
let check_atomic name db env ~expected run =
  let snap = Index_cache.snapshot env.Eval.icache in
  let edges_before = Database.get db "Edge" in
  (match run () with
  | (_ : Relation.t) -> Alcotest.failf "%s: expected Guard.Exhausted" name
  | exception Guard.Exhausted _ -> ());
  Alcotest.check Alcotest.bool
    (Fmt.str "%s: icache rolled back" name)
    true
    (Index_cache.snapshot_equal snap (Index_cache.snapshot env.Eval.icache));
  Alcotest.check Alcotest.bool
    (Fmt.str "%s: stored relation untouched" name)
    true
    (edges_before == Database.get db "Edge");
  Alcotest.check rel_testable
    (Fmt.str "%s: clean re-run unaffected" name)
    expected
    (Eval.eval_range env tc_range)

let test_atomic_abort_failpoints () =
  with_failpoints @@ fun () ->
  let db = db_with_chain 8 in
  let env = Database.eval_env db in
  (* warm the cache: the interesting rollbacks are of in-place advances *)
  let expected = Eval.eval_range env tc_range in
  Alcotest.check rel_testable "warm run correct" (chain_tc 8) expected;
  List.iter
    (fun site ->
      Guard.Failpoint.reset ();
      Guard.Failpoint.arm site 3;
      check_atomic (Fmt.str "failpoint %s" site) db env ~expected (fun () ->
          Eval.eval_range env tc_range))
    all_sites

let test_atomic_abort_limits () =
  let db = db_with_chain 8 in
  let env = Database.eval_env db in
  let expected = Eval.eval_range env tc_range in
  List.iter
    (fun (name, g) ->
      check_atomic name db env ~expected (fun () ->
          Eval.eval_range (Eval.with_guard env (g ())) tc_range))
    [
      ("rows limit", fun () -> Guard.create ~rows:15 ());
      ("rounds limit", fun () -> Guard.create ~rounds:2 ());
      ("deadline", fun () -> Guard.create ~millis:0 ());
      ("cancellation",
       fun () ->
         let g = Guard.create () in
         Guard.cancel g;
         g);
    ]

(* The qcheck form: any failpoint site, any hit count, any chain length —
   if the evaluation trips, state must be untouched and a clean re-run
   must still agree; if the schedule never fires the run just succeeds. *)
let prop_atomic_abort =
  QCheck.Test.make ~name:"aborted expansion is atomic" ~count:120
    QCheck.(
      triple (int_range 1 10)
        (oneofl all_sites)
        (int_range 1 60))
    (fun (n, site, hits) ->
      with_failpoints @@ fun () ->
      let db = db_with_chain n in
      let env = Database.eval_env db in
      let expected = Eval.eval_range env tc_range in
      let snap = Index_cache.snapshot env.Eval.icache in
      Guard.Failpoint.arm site hits;
      let tripped =
        match Eval.eval_range env tc_range with
        | (_ : Relation.t) -> false
        | exception Guard.Exhausted (Guard.Fault_injected _, _) -> true
      in
      Guard.Failpoint.reset ();
      let state_ok =
        (not tripped)
        || Index_cache.snapshot_equal snap
             (Index_cache.snapshot env.Eval.icache)
      in
      state_ok && Relation.equal expected (Eval.eval_range env tc_range))

let prop_limit_abort_atomic =
  QCheck.Test.make ~name:"limit-tripped expansion is atomic" ~count:120
    QCheck.(pair (int_range 2 10) (pair bool (int_range 1 40)))
    (fun (n, (use_rows, budget)) ->
      let db = db_with_chain n in
      let env = Database.eval_env db in
      let expected = Eval.eval_range env tc_range in
      let snap = Index_cache.snapshot env.Eval.icache in
      let g =
        if use_rows then Guard.create ~rows:budget ()
        else Guard.create ~rounds:budget ()
      in
      let tripped =
        match Eval.eval_range (Eval.with_guard env g) tc_range with
        | (_ : Relation.t) -> false
        | exception Guard.Exhausted _ -> true
      in
      let state_ok =
        (not tripped)
        || Index_cache.snapshot_equal snap
             (Index_cache.snapshot env.Eval.icache)
      in
      state_ok && Relation.equal expected (Eval.eval_range env tc_range))

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dc_guard"
    [
      ( "limits",
        [
          Alcotest.test_case "rows" `Quick test_rows_limit;
          Alcotest.test_case "rounds" `Quick test_rounds_limit;
          Alcotest.test_case "millis" `Quick test_millis_limit;
          Alcotest.test_case "cancellation" `Quick test_cancellation;
          Alcotest.test_case "set_limits round trip" `Quick
            test_set_limits_round_trip;
        ] );
      ( "engines",
        [
          Alcotest.test_case "datalog round limits" `Quick
            test_datalog_round_limits;
          Alcotest.test_case "datalog row limits" `Quick
            test_datalog_row_limits;
          Alcotest.test_case "tabled max_rounds" `Quick
            test_tabled_max_rounds_configurable;
          Alcotest.test_case "topdown budget compat" `Quick
            test_topdown_budget_compat;
          Alcotest.test_case "error taxonomy" `Quick test_error_taxonomy;
        ] );
      ( "failpoints",
        [
          Alcotest.test_case "arm / fire / disarm" `Quick test_failpoint_api;
          Alcotest.test_case "install schedules" `Quick test_failpoint_install;
        ] );
      ( "atomicity",
        Alcotest.test_case "failpoint aborts" `Quick
          test_atomic_abort_failpoints
        :: Alcotest.test_case "limit aborts" `Quick test_atomic_abort_limits
        :: qcheck [ prop_atomic_abort; prop_limit_abort_atomic ] );
    ]
