(* Tests for Dc_core: selectors, constructor fixpoints, database checks. *)

open Dc_relation
open Dc_calculus
open Dc_core

let s v = Value.Str v
let pair a b = Tuple.make2 (s a) (s b)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i =
    i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1))
  in
  nn = 0 || loop 0

let rel_testable = Alcotest.testable Relation.pp Relation.equal

let edge_schema = Constructor.binary_schema Value.TStr

let chain_rel n =
  (* "n0" -> "n1" -> ... -> "n<n>" *)
  Relation.of_list edge_schema
    (List.init n (fun i -> pair (Fmt.str "n%d" i) (Fmt.str "n%d" (i + 1))))

let db_with_chain ?strategy n =
  let db = Database.create ?strategy () in
  Database.declare db "Edge" edge_schema;
  Database.set db "Edge" (chain_rel n);
  Database.define_constructor db (Constructor.transitive_closure ());
  db

(* Expected transitive closure of the chain. *)
let chain_tc n =
  let tuples = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n do
      tuples := pair (Fmt.str "n%d" i) (Fmt.str "n%d" j) :: !tuples
    done
  done;
  Relation.of_list edge_schema !tuples

let test_tc_chain () =
  let db = db_with_chain 6 in
  let result = Database.query db Ast.(Construct (Rel "Edge", "tc", [])) in
  Alcotest.check rel_testable "closure of 6-chain" (chain_tc 6) result

let test_tc_matches_algebra () =
  List.iter
    (fun n ->
      let db = db_with_chain n in
      let result = Database.query db Ast.(Construct (Rel "Edge", "tc", [])) in
      let expected = Algebra.transitive_closure (chain_rel n) in
      Alcotest.check rel_testable
        (Fmt.str "tc(%d-chain) = Algebra.transitive_closure" n)
        expected result)
    [ 1; 2; 5; 9 ]

let test_strategies_agree () =
  List.iter
    (fun linear ->
      let edges =
        Relation.of_list edge_schema
          [
            pair "a" "b"; pair "b" "c"; pair "c" "a"; (* cycle *)
            pair "c" "d"; pair "d" "e"; pair "x" "y";
          ]
      in
      let mk strategy =
        let db = Database.create ~strategy () in
        Database.declare db "Edge" edge_schema;
        Database.set db "Edge" edges;
        Database.define_constructor db
          (Constructor.transitive_closure ~linear ());
        Database.query db Ast.(Construct (Rel "Edge", "tc", []))
      in
      Alcotest.check rel_testable "naive = semi-naive" (mk Fixpoint.Naive)
        (mk Fixpoint.Seminaive))
    [ `Right; `Left; `Non ]

let test_mutual_ahead_above () =
  (* lamp in front of vase, vase on table, table in front of chair.
     above: vase above chair   (vase on table, table ahead of chair)
     ahead: lamp ahead of chair (lamp in front of vase, vase above chair) *)
  let db = Database.create () in
  Database.declare db "Infront" (Constructor.infront_schema Value.TStr);
  Database.declare db "Ontop" (Constructor.ontop_schema Value.TStr);
  Database.insert_all db "Infront" [ pair "lamp" "vase"; pair "table" "chair" ];
  Database.insert_all db "Ontop" [ pair "vase" "table" ];
  let ahead, above = Constructor.ahead_above () in
  Database.define_constructors db [ ahead; above ];
  let ahead_rel =
    Database.query db
      Ast.(Construct (Rel "Infront", "ahead", [ Arg_range (Rel "Ontop") ]))
  in
  let above_rel =
    Database.query db
      Ast.(Construct (Rel "Ontop", "above", [ Arg_range (Rel "Infront") ]))
  in
  Alcotest.check Alcotest.bool "vase above chair" true
    (Relation.mem (pair "vase" "chair") above_rel);
  Alcotest.check Alcotest.bool "lamp ahead of table" true
    (Relation.mem (pair "lamp" "table") ahead_rel);
  Alcotest.check Alcotest.bool "lamp ahead of chair" true
    (Relation.mem (pair "lamp" "chair") ahead_rel);
  Alcotest.check rel_testable "ahead exactly"
    (Relation.of_list
       (Constructor.ahead_schema Value.TStr)
       [ pair "lamp" "vase"; pair "table" "chair"; pair "lamp" "table";
         pair "lamp" "chair" ])
    ahead_rel

let test_positivity_rejects_nonsense () =
  let db = Database.create () in
  Database.declare db "R" (Schema.make [ ("x", Value.TStr) ]);
  match Database.define_constructor db (Constructor.nonsense ()) with
  | () -> Alcotest.fail "expected Database.Error"
  | exception Database.Error msg ->
    Alcotest.check Alcotest.bool "message names the violation" true
      (contains msg "nonsense")

let test_nonsense_oscillates () =
  let db = Database.create ~check_positivity:false () in
  Database.declare db "R" (Schema.make [ ("x", Value.TStr) ]);
  Database.insert_all db "R" [ Tuple.make1 (s "a"); Tuple.make1 (s "b") ];
  Database.define_constructor db (Constructor.nonsense ());
  match Database.query db Ast.(Construct (Rel "R", "nonsense", [])) with
  | _ -> Alcotest.fail "expected Divergence"
  | exception Fixpoint.Divergence _ -> ()

let test_strange_converges () =
  (* Paper §3.3: Rel = {0..6}, Rel{strange} = {0,2,4,6} despite
     non-monotonicity. *)
  let db = Database.create ~check_positivity:false () in
  let schema = Schema.make [ ("number", Value.TInt) ] in
  Database.declare db "Card" schema;
  Database.set db "Card"
    (Relation.of_list schema (List.init 7 (fun i -> Tuple.make1 (Value.Int i))));
  Database.define_constructor db (Constructor.strange ());
  let result = Database.query db Ast.(Construct (Rel "Card", "strange", [])) in
  let expected =
    Relation.of_list schema
      (List.map (fun i -> Tuple.make1 (Value.Int i)) [ 0; 2; 4; 6 ])
  in
  Alcotest.check rel_testable "strange = {0,2,4,6}" expected result

let test_ahead_n_limit () =
  (* lim ahead_n = ahead (§3.1): on a 5-chain, ahead_6 already equals tc. *)
  let db = db_with_chain 5 in
  Database.define_constructors db (Constructor.ahead_n 6);
  let tc = Database.query db Ast.(Construct (Rel "Edge", "tc", [])) in
  let a6 = Database.query db Ast.(Construct (Rel "Edge", "ahead_6", [])) in
  Alcotest.check Alcotest.bool "ahead_6 = tc on 5-chain" true
    (Relation.equal tc a6);
  let a2 = Database.query db Ast.(Construct (Rel "Edge", "ahead_2", [])) in
  Alcotest.check Alcotest.int "ahead_2 cardinality" (5 + 4)
    (Relation.cardinal a2)

let from_selector =
  {
    Defs.sel_name = "from";
    sel_formal = "Rel";
    sel_formal_schema = edge_schema;
    sel_params = [ Defs.Scalar_param ("Obj", Value.TStr) ];
    sel_var = "r";
    sel_pred = Ast.(eq (field "r" "src") (Param "Obj"));
  }

let test_selector_filters () =
  let db = db_with_chain 3 in
  Database.define_selector db from_selector;
  let result =
    Database.query db
      Ast.(Select (Rel "Edge", "from", [ Arg_scalar (str "n1") ]))
  in
  Alcotest.check rel_testable "Edge[from(n1)]"
    (Relation.of_list edge_schema [ pair "n1" "n2" ])
    result

let test_selector_then_constructor () =
  (* Rel[sel]{tc}: §3.1-style composition of the two mechanisms *)
  let db = db_with_chain 4 in
  Database.define_selector db from_selector;
  let result =
    Database.query db
      Ast.(
        Construct
          (Select (Rel "Edge", "from", [ Arg_scalar (str "n2") ]), "tc", []))
  in
  Alcotest.check rel_testable "closure of selected subrelation"
    (Relation.of_list edge_schema [ pair "n2" "n3" ])
    result

let test_guarded_assignment () =
  let db = db_with_chain 2 in
  let sel =
    {
      Defs.sel_name = "no_self_loop";
      sel_formal = "Rel";
      sel_formal_schema = edge_schema;
      sel_params = [];
      sel_var = "r";
      sel_pred = Ast.(Cmp (Ne, field "r" "src", field "r" "dst"));
    }
  in
  Database.define_selector db sel;
  (* legal: closure of a chain has no self loops *)
  Database.assign_selected db "Edge" ~selector:"no_self_loop" ~args:[]
    Ast.(Construct (Rel "Edge", "tc", []));
  Alcotest.check Alcotest.int "assigned closure" 3
    (Relation.cardinal (Database.get db "Edge"));
  (* illegal: a self loop violates the predicate *)
  Database.set db "Loop" (Relation.of_list edge_schema [ pair "a" "a" ]);
  match
    Database.assign_selected db "Edge" ~selector:"no_self_loop" ~args:[]
      Ast.(Rel "Loop")
  with
  | () -> Alcotest.fail "expected Selector_violation"
  | exception Selector.Selector_violation _ -> ()

let test_key_constraint () =
  let schema =
    Schema.make ~key:[ "id" ] [ ("id", Value.TInt); ("name", Value.TStr) ]
  in
  let r = Relation.of_list schema [ Tuple.make2 (Value.Int 1) (s "a") ] in
  (match Relation.add (Tuple.make2 (Value.Int 1) (s "b")) r with
  | _ -> Alcotest.fail "expected Key_violation"
  | exception Relation.Key_violation _ -> ());
  let r' = Relation.add (Tuple.make2 (Value.Int 1) (s "a")) r in
  Alcotest.check Alcotest.int "idempotent add" 1 (Relation.cardinal r')

let test_same_generation () =
  let db = Database.create () in
  List.iter (fun n -> Database.declare db n edge_schema) [ "Up"; "Flat"; "Down" ];
  Database.insert_all db "Up" [ pair "c1" "p1"; pair "c2" "p2" ];
  Database.insert_all db "Flat" [ pair "p1" "p2" ];
  Database.insert_all db "Down" [ pair "p2" "c2" ];
  Database.define_constructor db (Constructor.same_generation ());
  let result =
    Database.query db
      Ast.(
        Construct
          ( Rel "Up",
            "same_generation",
            [ Arg_range (Rel "Flat"); Arg_range (Rel "Down") ] ))
  in
  Alcotest.check Alcotest.bool "c1 sg c2" true
    (Relation.mem (pair "c1" "c2") result);
  Alcotest.check Alcotest.bool "p1 sg p2" true
    (Relation.mem (pair "p1" "p2") result)

(* Scalar-parameterized constructors: the application key includes the
   argument values, so Edge{reach_from("a")} and Edge{reach_from("b")} are
   distinct applications of the same definition. *)
let reach_from_def =
  {
    Defs.con_name = "reach_from";
    con_formal = "Rel";
    con_formal_schema = edge_schema;
    con_params = [ Defs.Scalar_param ("Obj", Value.TStr) ];
    con_result = edge_schema;
    con_agg = None;
    con_body =
      Ast.
        [
          branch [ ("r", Rel "Rel") ] ~where:(eq (field "r" "src") (Param "Obj"));
          branch
            [
              ( "f",
                Construct (Rel "Rel", "reach_from", [ Arg_scalar (Param "Obj") ])
              );
              ("b", Rel "Rel");
            ]
            ~target:[ field "f" "src"; field "b" "dst" ]
            ~where:(eq (field "f" "dst") (field "b" "src"));
        ];
  }

let test_scalar_parameterized_constructor () =
  let db = db_with_chain 5 in
  Database.define_constructor db reach_from_def;
  let query obj =
    Database.query db
      Ast.(Construct (Rel "Edge", "reach_from", [ Arg_scalar (str obj) ]))
  in
  Alcotest.check rel_testable "reachable from n1"
    (Relation.of_list edge_schema
       [ pair "n1" "n2"; pair "n1" "n3"; pair "n1" "n4"; pair "n1" "n5" ])
    (query "n1");
  Alcotest.check Alcotest.int "reachable from n3" 2
    (Relation.cardinal (query "n3"));
  Alcotest.check Alcotest.int "reachable from absent node" 0
    (Relation.cardinal (query "zzz"));
  (* one application per argument value in one system *)
  match Database.last_stats db with
  | Some st -> Alcotest.check Alcotest.int "single app" 1 st.Fixpoint.applications
  | None -> Alcotest.fail "no stats"

(* Stratified negation over constructors: a definition may apply a
   constructor from a *lower* dependency SCC under NOT — it acts as a
   constant during this system's iteration (closed-world reading, §3.4).
   non_desc selects the pairs NOT in the closure. *)
let test_stratified_negation_over_constructor () =
  let db = db_with_chain 3 in
  (* candidate pairs to classify *)
  Database.declare db "Pairs" edge_schema;
  Database.insert_all db "Pairs"
    [ pair "n0" "n3"; pair "n3" "n0"; pair "n1" "n1" ];
  let non_desc =
    {
      Defs.con_name = "non_desc";
      con_formal = "Rel";
      con_formal_schema = edge_schema;
      con_params = [];
      con_result = edge_schema;
      con_agg = None;
      con_body =
        Ast.
          [
            branch
              [ ("p", Rel "Rel") ]
              ~where:
                (Not
                   (Member
                      ( [ field "p" "src"; field "p" "dst" ],
                        Construct (Rel "Edge", "tc", []) )));
          ];
    }
  in
  (* accepted: tc is in a lower SCC, so the odd-depth occurrence is legal *)
  Database.define_constructor db non_desc;
  let result = Database.query db Ast.(Construct (Rel "Pairs", "non_desc", [])) in
  Alcotest.check rel_testable "pairs not in the closure"
    (Relation.of_list edge_schema [ pair "n3" "n0"; pair "n1" "n1" ])
    result

(* The same shape with the negation *inside the recursion* is rejected. *)
let test_negative_self_recursion_rejected () =
  let db = db_with_chain 2 in
  let bad =
    {
      Defs.con_name = "bad";
      con_formal = "Rel";
      con_formal_schema = edge_schema;
      con_params = [];
      con_result = edge_schema;
      con_agg = None;
      con_body =
        Ast.
          [
            branch
              [ ("p", Rel "Rel") ]
              ~where:
                (Not
                   (Member
                      ( [ field "p" "src"; field "p" "dst" ],
                        Construct (Rel "Rel", "bad", []) )));
          ];
    }
  in
  match Database.define_constructor db bad with
  | () -> Alcotest.fail "expected positivity rejection"
  | exception Database.Error _ -> ()

let test_group_definition_rollback () =
  (* a failing group must leave the registry unchanged *)
  let db = db_with_chain 2 in
  let good = Constructor.ahead_2 () in
  let bad =
    { (Constructor.nonsense ()) with Defs.con_formal_schema = edge_schema }
  in
  (match Database.define_constructors db [ good; bad ] with
  | () -> Alcotest.fail "expected rejection of the group"
  | exception Database.Error _ -> ());
  Alcotest.check Alcotest.bool "good def not registered either" true
    (Database.constructor db "ahead2" = None);
  Alcotest.check Alcotest.bool "tc still present" true
    (Database.constructor db "tc" <> None)

let test_closed_formula () =
  let db = db_with_chain 3 in
  Alcotest.check Alcotest.bool "membership formula" true
    (Database.eval_formula db
       Ast.(Member ([ str "n0"; str "n1" ], Rel "Edge")));
  Alcotest.check Alcotest.bool "quantified formula" true
    (Database.eval_formula db
       Ast.(Some_in ("r", Rel "Edge", eq (field "r" "dst") (str "n3"))));
  Alcotest.check Alcotest.bool "over a constructed relation" true
    (Database.eval_formula db
       Ast.(Member ([ str "n0"; str "n3" ], Construct (Rel "Edge", "tc", []))))

(* The §3.4 alternatives all compute the same closure. *)
let test_alternatives_agree () =
  let edges =
    Relation.of_list edge_schema
      [ pair "a" "b"; pair "b" "c"; pair "c" "a"; pair "c" "d" ]
  in
  let reference = Algebra.transitive_closure edges in
  List.iter
    (fun (name, f) ->
      Alcotest.check rel_testable name reference (f edges))
    [
      ("program iteration", Alternatives.program_iteration);
      ("recursive function", Alternatives.recursive_function);
      ("specialized operator", Alternatives.specialized_operator);
      ("equational lfp", Alternatives.equational);
    ];
  (* membership function, incl. cyclic data and negative answers *)
  Alcotest.check Alcotest.bool "a reaches d" true
    (Alternatives.membership_function edges (s "a") (s "d"));
  Alcotest.check Alcotest.bool "a reaches a (cycle)" true
    (Alternatives.membership_function edges (s "a") (s "a"));
  Alcotest.check Alcotest.bool "d reaches a" false
    (Alternatives.membership_function edges (s "d") (s "a"))

let test_lfp_combinator () =
  (* lfp of a constant step is that constant *)
  let r = Relation.of_list edge_schema [ pair "x" "y" ] in
  let got = Alternatives.lfp ~bottom:(Relation.empty edge_schema) (fun _ -> r) in
  Alcotest.check rel_testable "constant step" r got

let test_round_budget () =
  let db = Database.create ~max_rounds:3 () in
  Database.declare db "Edge" edge_schema;
  Database.set db "Edge" (chain_rel 10);
  Database.define_constructor db (Constructor.transitive_closure ());
  match Database.query db Ast.(Construct (Rel "Edge", "tc", [])) with
  | _ -> Alcotest.fail "expected Divergence (budget)"
  | exception Fixpoint.Divergence msg ->
    Alcotest.check Alcotest.bool "mentions max_rounds" true
      (contains msg "max_rounds")

let test_coerce_rejects () =
  let keyed =
    Schema.make ~key:[ "src" ] [ ("src", Value.TStr); ("dst", Value.TStr) ]
  in
  let dupes =
    Relation.of_list edge_schema [ pair "a" "b"; pair "a" "c" ]
  in
  match Database.coerce keyed dupes with
  | _ -> Alcotest.fail "expected Key_violation via coerce"
  | exception Relation.Key_violation _ -> ()

let test_seeded_fixpoint () =
  (* Fixpoint.apply ~seed from a sub-fixpoint converges to the same LFP *)
  let db = db_with_chain 8 in
  let def = Option.get (Database.constructor db "tc") in
  let env = Database.eval_env db in
  let base = Database.get db "Edge" in
  let from_bottom = Fixpoint.apply env def base [] in
  (* seed with a partial value: the base itself *)
  let seeded =
    Fixpoint.apply ~seed:(Relation.with_schema def.Defs.con_result base) env
      def base []
  in
  Alcotest.check rel_testable "seeded = from bottom" from_bottom seeded

let test_fixpoint_stats () =
  let db = db_with_chain 8 in
  ignore (Database.query db Ast.(Construct (Rel "Edge", "tc", [])));
  match Database.last_stats db with
  | None -> Alcotest.fail "no stats recorded"
  | Some st ->
    Alcotest.check Alcotest.bool "rounds > 2" true (st.Fixpoint.rounds > 2);
    Alcotest.check Alcotest.int "single application system" 1
      st.Fixpoint.applications

let () =
  Alcotest.run "dc_core"
    [
      ( "fixpoint",
        [
          Alcotest.test_case "tc of chain" `Quick test_tc_chain;
          Alcotest.test_case "tc matches algebra" `Quick test_tc_matches_algebra;
          Alcotest.test_case "naive = semi-naive" `Quick test_strategies_agree;
          Alcotest.test_case "mutual ahead/above" `Quick test_mutual_ahead_above;
          Alcotest.test_case "ahead_n limit" `Quick test_ahead_n_limit;
          Alcotest.test_case "same generation" `Quick test_same_generation;
          Alcotest.test_case "stats recorded" `Quick test_fixpoint_stats;
          Alcotest.test_case "scalar-parameterized constructor" `Quick
            test_scalar_parameterized_constructor;
        ] );
      ( "positivity",
        [
          Alcotest.test_case "nonsense rejected" `Quick
            test_positivity_rejects_nonsense;
          Alcotest.test_case "nonsense oscillates" `Quick
            test_nonsense_oscillates;
          Alcotest.test_case "strange converges" `Quick test_strange_converges;
          Alcotest.test_case "stratified NOT over lower SCC" `Quick
            test_stratified_negation_over_constructor;
          Alcotest.test_case "negative self-recursion rejected" `Quick
            test_negative_self_recursion_rejected;
        ] );
      ( "seeding",
        [ Alcotest.test_case "seeded fixpoint" `Quick test_seeded_fixpoint ] );
      ( "guards",
        [
          Alcotest.test_case "round budget" `Quick test_round_budget;
          Alcotest.test_case "coerce re-checks keys" `Quick test_coerce_rejects;
          Alcotest.test_case "group definition rollback" `Quick
            test_group_definition_rollback;
          Alcotest.test_case "closed formulas" `Quick test_closed_formula;
        ] );
      ( "alternatives (3.4)",
        [
          Alcotest.test_case "all agree" `Quick test_alternatives_agree;
          Alcotest.test_case "lfp combinator" `Quick test_lfp_combinator;
        ] );
      ( "selectors",
        [
          Alcotest.test_case "filter" `Quick test_selector_filters;
          Alcotest.test_case "compose with constructor" `Quick
            test_selector_then_constructor;
          Alcotest.test_case "guarded assignment" `Quick test_guarded_assignment;
        ] );
      ( "relation",
        [ Alcotest.test_case "key constraint" `Quick test_key_constraint ] );
    ]
