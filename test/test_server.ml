(* Snapshot-isolated serving: the versioned store and the multi-session
   front end (lib/server).

   The centerpiece is a seeded stress test: one writer thread pushes 200
   randomized INSERT/DELETE batches through the server's writer queue
   while four reader sessions issue 800 snapshot queries (base extent
   and a live maintained transitive closure) concurrently — 1000 mixed
   statements over one database.  Every read returns the snapshot
   version it observed, and its result must equal, tuple for tuple, the
   sequential replay oracle's precomputed state for exactly that
   version: a read that mixed two versions cannot match any oracle
   entry.  Versions must also be observed monotonically per session.
   Every failure message carries the seed.

   Around it: freeze discipline units for the kernel (Index_cache
   freeze/share/put, Facts.freeze), snapshot immutability and version
   monotonicity, rollback through the single commit point (the
   [ivm.commit] failpoint must leave the published snapshot untouched),
   writer serialization and submit re-entrancy, admission control,
   per-session guard limits, BEGIN/COMMIT pinning through a session, and
   the SHOW SNAPSHOT golden output. *)

open Dc_relation
open Dc_datalog
module Ast = Dc_calculus.Ast
module Database = Dc_core.Database
module Snapshot = Dc_core.Snapshot
module Ivm = Dc_ivm.Ivm
module Guard = Dc_guard.Guard
module Server = Dc_server.Server
module Rng = Dc_workload.Rng
module Graph_gen = Dc_workload.Graph_gen
module TS = Facts.TS

let ts_of_relation rel = Relation.fold TS.add rel TS.empty
let rel_testable = Alcotest.testable Relation.pp Relation.equal

(* ------------------------------------------------------------------ *)
(* Kernel freeze discipline *)

let pair a b = Tuple.of_list [ Graph_gen.node a; Graph_gen.node b ]

let small_rel =
  Relation.of_list Graph_gen.edge_schema [ pair 1 2; pair 2 3; pair 3 4 ]

let test_index_cache_freeze () =
  let c = Index_cache.create () in
  let idx = Index_cache.get c [ 0 ] small_rel in
  let f = Index_cache.freeze c in
  Alcotest.(check bool) "frozen" true (Index_cache.is_frozen f);
  Alcotest.(check bool) "original not frozen" false (Index_cache.is_frozen c);
  (* pure lookup on the frozen cache returns the same physical index *)
  (match Index_cache.frozen_get f [ 0 ] small_rel with
  | Some i -> Alcotest.(check bool) "shared by reference" true (i == idx)
  | None -> Alcotest.fail "frozen_get missed a carried entry");
  Alcotest.(check (option reject))
    "frozen_get miss is None" None
    (Index_cache.frozen_get f [ 1 ] small_rel);
  (* a miss through get on a frozen cache builds without inserting *)
  ignore (Index_cache.get f [ 1 ] small_rel);
  Alcotest.(check int) "frozen cache unchanged" 1 (Index_cache.length f)

let test_index_cache_shared_fallback () =
  let base = Index_cache.create () in
  let idx = Index_cache.get base [ 0 ] small_rel in
  let f = Index_cache.freeze base in
  let c = Index_cache.create ~shared:f () in
  (* the shared hit is borrowed, not adopted *)
  let got = Index_cache.get c [ 0 ] small_rel in
  Alcotest.(check bool) "borrowed from shared" true (got == idx);
  Alcotest.(check int) "nothing adopted" 0 (Index_cache.length c);
  (* a genuine miss still builds locally *)
  ignore (Index_cache.get c [ 1 ] small_rel);
  Alcotest.(check int) "local build cached" 1 (Index_cache.length c);
  Alcotest.(check int) "shared cache untouched" 1 (Index_cache.length f)

let test_index_cache_put () =
  let c = Index_cache.create () in
  let idx = Index.build [ 0 ] small_rel in
  Index_cache.put c [ 0 ] small_rel idx;
  Alcotest.(check bool)
    "put entry served" true
    (Index_cache.get c [ 0 ] small_rel == idx)

let test_facts_freeze () =
  let store = Facts.of_relation "e" small_rel (Facts.empty ()) in
  let f = Facts.freeze store in
  Alcotest.(check bool) "frozen" true (Facts.is_frozen f);
  Alcotest.(check int) "extent carried" 3 (Facts.cardinal f "e");
  (* concurrent lookups on a frozen store are pure: hammer it from
     systhreads and compare against the sequential answer *)
  let expected = Facts.cardinal f "e" in
  let results = Array.make 8 (-1) in
  let threads =
    Array.init 8 (fun i ->
        Thread.create
          (fun () ->
            let n = ref 0 in
            for _ = 1 to 50 do
              n := Facts.cardinal f "e"
            done;
            results.(i) <- !n)
          ())
  in
  Array.iter Thread.join threads;
  Array.iter (fun n -> Alcotest.(check int) "pure reads" expected n) results

(* ------------------------------------------------------------------ *)
(* Versioned store *)

let test_snapshot_immutable () =
  let db = Database.create () in
  Database.declare db "Edge" Graph_gen.edge_schema;
  Database.insert db "Edge" (pair 1 2);
  let s1 = Database.snapshot db in
  let v1 = Snapshot.version s1 in
  Database.insert db "Edge" (pair 2 3);
  let s2 = Database.snapshot db in
  Alcotest.(check int) "monotone version" (v1 + 1) (Snapshot.version s2);
  Alcotest.(check (option rel_testable))
    "old snapshot unchanged"
    (Some (Relation.of_list Graph_gen.edge_schema [ pair 1 2 ]))
    (Snapshot.get s1 "Edge");
  Alcotest.(check (option rel_testable))
    "new snapshot sees the write"
    (Some (Relation.of_list Graph_gen.edge_schema [ pair 1 2; pair 2 3 ]))
    (Snapshot.get s2 "Edge");
  (* old snapshots keep answering queries *)
  Alcotest.(check int) "query old version" 1
    (Relation.cardinal (Snapshot.query s1 (Ast.Rel "Edge")))

let test_update_batch_one_version () =
  let db = Database.create () in
  Database.declare db "Edge" Graph_gen.edge_schema;
  Database.insert db "Edge" (pair 1 2);
  let v = Database.version db in
  Database.update_batch db
    [ ("Edge", [ pair 2 3; pair 3 4 ], [ pair 1 2 ]) ];
  Alcotest.(check int) "one version per batch" (v + 1) (Database.version db);
  Alcotest.(check rel_testable) "net effect"
    (Relation.of_list Graph_gen.edge_schema [ pair 2 3; pair 3 4 ])
    (Database.get db "Edge")

(* rollback must go through the single commit point: an injected fault
   leaves the version and the published snapshot untouched *)
let test_commit_rollback_publishes_nothing () =
  let db = Database.create () in
  Database.declare db "Edge" Graph_gen.edge_schema;
  Database.insert db "Edge" (pair 1 2);
  let before = Database.snapshot db in
  Guard.Failpoint.arm "ivm.commit" 1;
  (match Database.insert db "Edge" (pair 2 3) with
  | () -> Alcotest.fail "failpoint never hit"
  | exception Guard.Exhausted (Guard.Fault_injected "ivm.commit", _) -> ()
  | exception e ->
    Guard.Failpoint.reset ();
    raise e);
  Guard.Failpoint.reset ();
  Alcotest.(check bool)
    "published snapshot is still the old one" true
    (Database.snapshot db == before);
  Alcotest.(check int) "version unchanged" (Snapshot.version before)
    (Database.version db);
  Alcotest.(check rel_testable) "binding rolled back"
    (Relation.of_list Graph_gen.edge_schema [ pair 1 2 ])
    (Database.get db "Edge")

(* ------------------------------------------------------------------ *)
(* Server basics *)

let test_submit_serializes () =
  let db = Database.create () in
  let srv = Server.create db in
  let counter = ref 0 in
  let threads =
    Array.init 8 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 100 do
              Server.submit srv (fun () -> incr counter)
            done)
          ())
  in
  Array.iter Thread.join threads;
  Alcotest.(check int) "all jobs ran exactly once" 800 !counter;
  (* re-entrant submit runs inline on the writer thread, no deadlock *)
  let nested =
    Server.submit srv (fun () -> Server.submit srv (fun () -> 41) + 1)
  in
  Alcotest.(check int) "nested submit" 42 nested;
  (* exceptions propagate to the submitter, writer survives *)
  (match Server.submit srv (fun () -> failwith "boom") with
  | () -> Alcotest.fail "exception swallowed"
  | exception Failure msg -> Alcotest.(check string) "payload" "boom" msg);
  Alcotest.(check int) "writer alive" 7 (Server.submit srv (fun () -> 7));
  Server.shutdown srv;
  (match Server.submit srv (fun () -> ()) with
  | () -> Alcotest.fail "accepted after shutdown"
  | exception Server.Error _ -> ())

let test_admission_control () =
  let db = Database.create () in
  let srv = Server.create ~max_sessions:2 db in
  let s1 = Server.open_session srv in
  let s2 = Server.open_session srv in
  Alcotest.(check int) "two open" 2 (Server.session_count srv);
  (match Server.open_session srv with
  | _ -> Alcotest.fail "admission control did not trip"
  | exception Server.Error _ -> ());
  Server.close_session s1;
  let s3 = Server.open_session srv in
  Server.close_session s2;
  Server.close_session s3;
  (* closing twice is a no-op *)
  Server.close_session s3;
  Alcotest.(check int) "all closed" 0 (Server.session_count srv);
  Server.shutdown srv

let test_session_limits () =
  let db = Database.create () in
  Database.declare db "Edge" Graph_gen.edge_schema;
  Database.set db "Edge"
    (Graph_gen.random_graph ~seed:7 ~nodes:20 ~edges:60);
  let srv = Server.create db in
  (* a scan that actually ticks the row guard: EACH e IN Edge: TRUE *)
  let scan =
    Ast.Comp [ { Ast.binders = [ ("e", Ast.Rel "Edge") ]; target = []; where = Ast.True } ]
  in
  let tight = Server.open_session ~limits:(Guard.limits ~rows:3 ()) srv in
  (match Server.query tight scan with
  | _ -> Alcotest.fail "tight session guard never tripped"
  | exception Guard.Exhausted (Guard.Rows_exhausted _, _) -> ());
  let roomy = Server.open_session srv in
  let rel, _ = Server.query roomy scan in
  Alcotest.(check int) "default session unaffected" 60 (Relation.cardinal rel);
  Server.close_session tight;
  Server.close_session roomy;
  Server.shutdown srv

let contains_s s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

let test_session_pinning () =
  let db = Database.create () in
  Database.declare db "Edge" Graph_gen.edge_schema;
  Database.insert db "Edge" (pair 1 2);
  let srv = Server.create db in
  let reader = Server.open_session srv in
  let writer = Server.open_session srv in
  let out = Server.execute reader "BEGIN;" in
  Alcotest.(check bool) "pinned" true (contains_s out "pinned snapshot");
  let _, v1 = Server.query reader (Ast.Rel "Edge") in
  ignore (Server.execute writer {|INSERT Edge VALUES ("n3", "n4");|});
  (* the pinned reader still sees the old version... *)
  let rel, v2 = Server.query reader (Ast.Rel "Edge") in
  Alcotest.(check int) "same pinned version" v1 v2;
  Alcotest.(check int) "old extent" 1 (Relation.cardinal rel);
  (* ...and writes inside the transaction are rejected *)
  (match Server.execute reader {|INSERT Edge VALUES ("n5", "n6");|} with
  | _ -> Alcotest.fail "write allowed inside read-only transaction"
  | exception Dc_lang.Elaborate.Elab_error msg ->
    Alcotest.(check bool) "reason" true (contains_s msg "BEGIN"));
  let out = Server.execute reader "COMMIT;" in
  Alcotest.(check bool) "released" true (contains_s out "released");
  let rel, v3 = Server.query reader (Ast.Rel "Edge") in
  Alcotest.(check bool) "unpinned reader advances" true (v3 > v1);
  Alcotest.(check int) "new extent" 2 (Relation.cardinal rel);
  Server.close_session reader;
  Server.close_session writer;
  Server.shutdown srv

(* ------------------------------------------------------------------ *)
(* SHOW SNAPSHOT golden *)

let snapshot_surface =
  {|
TYPE node = STRING;
TYPE edgerel = RELATION a, b OF RECORD a, b: node END;
VAR Edge: edgerel;
VAR Other: edgerel;
CONSTRUCTOR tc FOR Rel: edgerel (): edgerel;
BEGIN EACH e IN Rel: TRUE,
      <e.a, p.b> OF EACH e IN Rel, EACH p IN Rel{tc()}: e.b = p.a
END tc;
INSERT Edge VALUES ("a", "b"), ("b", "c");
MATERIALIZE Edge{tc()};
SHOW SNAPSHOT;
SET MAINTAIN OFF;
INSERT Edge VALUES ("c", "d");
SHOW SNAPSHOT;
|}

let test_show_snapshot_golden () =
  let _db, out = Dc_lang.Elaborate.run_string snapshot_surface in
  let golden =
    "SHOW SNAPSHOT\n\
     version 5: 2 relations, 1 view\n\
     \n\
     SHOW SNAPSHOT\n\
     version 7: 2 relations, 1 view (stale: tc__Edge)\n\
     \n"
  in
  (* keep only the SHOW SNAPSHOT sections: MATERIALIZE also prints *)
  let shown =
    let lines = String.split_on_char '\n' out in
    let rec keep acc = function
      | [] -> List.rev acc
      | l :: rest when contains_s l "SHOW SNAPSHOT" -> (
        match rest with
        | v :: rest -> keep (("" :: v :: [ l ]) @ acc) rest
        | [] -> keep (l :: acc) [])
      | _ :: rest -> keep acc rest
    in
    String.concat "\n" (List.concat_map Fun.id [ keep [] lines ]) ^ "\n"
  in
  Alcotest.(check string) "golden" golden shown

(* ------------------------------------------------------------------ *)
(* The stress test: 1 writer, N readers, sequential replay oracle *)

let nodes = 10
let writer_batches = 200
let readers = 4
let reads_per_reader = 200

(* one randomized batch against the current pure extent: deletions of
   existing tuples, insertions of absent ones, disjoint, never empty.
   Deletions come only from the pre-batch extent — [update_batch]
   applies removals before additions, so deleting a same-batch insert
   would not round-trip *)
let gen_batch rng rel =
  let ops = 1 + Rng.int rng 4 in
  let dels = ref [] and adds = ref [] in
  let current = ref rel in
  for _ = 1 to ops do
    let deletable =
      List.filter (fun t -> Relation.mem t rel) (Relation.to_list !current)
    in
    if deletable <> [] && Rng.bool rng 0.45 then begin
      let t = List.nth deletable (Rng.int rng (List.length deletable)) in
      current := Relation.remove t !current;
      dels := t :: !dels
    end
    else begin
      let t = pair (Rng.int rng nodes) (Rng.int rng nodes) in
      if not (Relation.mem t rel) && not (List.exists (Tuple.equal t) !adds)
      then begin
        current := Relation.add t !current;
        adds := t :: !adds
      end
    end
  done;
  if !adds = [] && !dels = [] then begin
    (* guarantee progress: delete one existing or add a fresh tuple *)
    match Relation.to_list !current with
    | t :: _ ->
      dels := [ t ];
      current := Relation.remove t !current
    | [] ->
      adds := [ pair 0 1 ];
      current := Relation.add (pair 0 1) !current
  end;
  (!adds, !dels, !current)

(* sequential replay oracle: randomized batches plus the expected extent
   and expected transitive closure after each, indexed by
   batches-applied *)
let build_oracle rng init =
  let expected_edge = Array.make (writer_batches + 1) init in
  let batches = Array.make writer_batches ([], []) in
  let cur = ref init in
  for i = 0 to writer_batches - 1 do
    let adds, dels, next = gen_batch rng !cur in
    batches.(i) <- (adds, dels);
    cur := next;
    expected_edge.(i + 1) <- next
  done;
  let expected_path =
    Array.map
      (fun rel ->
        Seminaive.query Oracle.tc_nonlinear
          (Facts.of_relation "edge" rel (Facts.empty ()))
          "path")
      expected_edge
  in
  (batches, expected_edge, expected_path)

let test_stress seed () =
  let rng = Rng.create seed in
  let init =
    Graph_gen.random_graph ~seed:(Rng.int rng 1_000_000) ~nodes
      ~edges:(2 * nodes)
  in
  let batches, expected_edge, expected_path = build_oracle rng init in
  (* live database: edge + a maintained transitive closure view *)
  let db = Database.create () in
  Database.declare db "edge" Graph_gen.edge_schema;
  Database.set db "edge" init;
  let schema_of _ = Graph_gen.edge_schema in
  let defs, bottoms = Translate.to_constructors schema_of Oracle.tc_nonlinear in
  List.iter (fun (n, s) -> Database.declare db n s) bottoms;
  Database.define_constructors db defs;
  let view =
    Ivm.materialize db ~constructor:"path" ~base:"__bottom_path" ~args:[]
  in
  ignore view;
  let srv = Server.create db in
  let v0 = Database.version db in
  let path_range = Ast.Construct (Ast.Rel "__bottom_path", "path", []) in
  let failures = ref [] in
  let fail_m = Mutex.create () in
  let record fmt =
    Fmt.kstr
      (fun msg -> Mutex.protect fail_m (fun () -> failures := msg :: !failures))
      fmt
  in
  let writer () =
    Array.iter
      (fun (adds, dels) ->
        Server.submit srv (fun () ->
            Database.update_batch db [ ("edge", adds, dels) ]))
      batches
  in
  let reader r () =
    let s = Server.open_session srv in
    let last_v = ref (-1) in
    for i = 1 to reads_per_reader do
      let want_path = (i + r) mod 2 = 0 in
      let rel, v =
        Server.query s (if want_path then path_range else Ast.Rel "edge")
      in
      let idx = v - v0 in
      if idx < 0 || idx > writer_batches then
        record "seed %d reader %d read %d: version %d outside [%d, %d]" seed r
          i v v0 (v0 + writer_batches)
      else if v < !last_v then
        record "seed %d reader %d read %d: version went backwards (%d after %d)"
          seed r i v !last_v
      else begin
        last_v := v;
        if want_path then begin
          let got = ts_of_relation rel in
          if not (TS.equal expected_path.(idx) got) then
            record
              "seed %d reader %d read %d: path at version %d diverged from \
               oracle (%d vs %d tuples)"
              seed r i v (TS.cardinal got)
              (TS.cardinal expected_path.(idx))
        end
        else if not (Relation.equal expected_edge.(idx) rel) then
          record
            "seed %d reader %d read %d: edge at version %d diverged from \
             oracle (%d vs %d tuples)"
            seed r i v (Relation.cardinal rel)
            (Relation.cardinal expected_edge.(idx))
      end
    done;
    Server.close_session s
  in
  let wt = Thread.create writer () in
  let rts = Array.init readers (fun r -> Thread.create (reader r) ()) in
  Thread.join wt;
  Array.iter Thread.join rts;
  Alcotest.(check int)
    (Fmt.str "seed %d: one version per batch" seed)
    (v0 + writer_batches) (Database.version db);
  (* final state converged to the oracle's *)
  Alcotest.check rel_testable
    (Fmt.str "seed %d: final edge extent" seed)
    expected_edge.(writer_batches)
    (Database.get db "edge");
  let got = ts_of_relation (Database.query db path_range) in
  if not (TS.equal expected_path.(writer_batches) got) then
    Alcotest.failf "seed %d: final path extent diverged (%d vs %d tuples)" seed
      (TS.cardinal got)
      (TS.cardinal expected_path.(writer_batches));
  Server.shutdown srv;
  match !failures with
  | [] -> ()
  | msgs ->
    Alcotest.failf "%d isolation violations, first: %s" (List.length msgs)
      (List.hd (List.rev msgs))

(* ------------------------------------------------------------------ *)
(* The same contract over the wire: 1 writer, N TCP reader clients *)

module Net = Dc_net.Net

let socket_setup =
  {|
TYPE node = STRING;
TYPE edgerel = RELATION a, b OF RECORD a, b: node END;
VAR Edge: edgerel;
CONSTRUCTOR tc FOR Rel: edgerel (): edgerel;
BEGIN EACH e IN Rel: TRUE,
      <e.a, p.b> OF EACH e IN Rel, EACH p IN Rel{tc()}: e.b = p.a
END tc;
|}

let ts_of_tuples tuples =
  List.fold_left (fun acc t -> TS.add t acc) TS.empty tuples

(* the in-process stress proves snapshot isolation; this one proves the
   whole network stack preserves it — every read crosses the wire
   protocol, a connection thread, and the domain pool, and must still
   match the sequential replay oracle at exactly its observed version *)
let test_socket_stress seed () =
  let rng = Rng.create seed in
  (* the surface [edgerel] names its columns a/b, so rebase the
     generated graph onto that schema *)
  let surface_schema =
    Dc_core.Constructor.binary_schema ~a:"a" ~b:"b" Value.TStr
  in
  let init =
    Relation.of_list surface_schema
      (Relation.to_list
         (Graph_gen.random_graph ~seed:(Rng.int rng 1_000_000) ~nodes
            ~edges:(2 * nodes)))
  in
  let batches, expected_edge, expected_path = build_oracle rng init in
  let expected_edge_ts = Array.map ts_of_relation expected_edge in
  let db = Database.create () in
  let srv = Server.create db in
  let s = Server.open_session srv in
  ignore (Server.execute s socket_setup);
  Server.close_session s;
  Server.submit srv (fun () -> Database.set db "Edge" init);
  let listener = Net.listen srv (Net.Tcp ("127.0.0.1", 0)) in
  let port = Net.bound_port listener in
  let v0 = Database.version db in
  let failures = ref [] in
  let fail_m = Mutex.create () in
  let record fmt =
    Fmt.kstr
      (fun msg -> Mutex.protect fail_m (fun () -> failures := msg :: !failures))
      fmt
  in
  let writer () =
    Array.iter
      (fun (adds, dels) ->
        Server.submit srv (fun () ->
            Database.update_batch db [ ("Edge", adds, dels) ]))
      batches
  in
  let reader r () =
    let c = Net.Client.connect (Net.Tcp ("127.0.0.1", port)) in
    let last_v = ref (-1) in
    (try
       for i = 1 to reads_per_reader do
         let want_path = (i + r) mod 2 = 0 in
         let v, _cols, tuples =
           Net.Client.query c
             (if want_path then "QUERY Edge{tc()};" else "QUERY Edge;")
         in
         let idx = v - v0 in
         if idx < 0 || idx > writer_batches then
           record "seed %d client %d read %d: version %d outside [%d, %d]"
             seed r i v v0 (v0 + writer_batches)
         else if v < !last_v then
           record
             "seed %d client %d read %d: version went backwards (%d after %d)"
             seed r i v !last_v
         else begin
           last_v := v;
           let got = ts_of_tuples tuples in
           let expected =
             if want_path then expected_path.(idx) else expected_edge_ts.(idx)
           in
           if not (TS.equal expected got) then
             record
               "seed %d client %d read %d: %s at version %d diverged from \
                oracle (%d vs %d tuples)"
               seed r i
               (if want_path then "tc" else "edge")
               v (TS.cardinal got) (TS.cardinal expected)
         end
       done
     with e -> record "seed %d client %d died: %s" seed r (Printexc.to_string e));
    Net.Client.close c
  in
  let wt = Thread.create writer () in
  let rts = Array.init readers (fun r -> Thread.create (reader r) ()) in
  Thread.join wt;
  Array.iter Thread.join rts;
  (* convergence, observed through a fresh client *)
  let c = Net.Client.connect (Net.Tcp ("127.0.0.1", port)) in
  let v, _, tuples = Net.Client.query c "QUERY Edge;" in
  Alcotest.(check int)
    (Fmt.str "seed %d: one version per batch" seed)
    (v0 + writer_batches) v;
  if not (TS.equal expected_edge_ts.(writer_batches) (ts_of_tuples tuples)) then
    Alcotest.failf "seed %d: final edge extent diverged over the wire" seed;
  let _, _, path_tuples = Net.Client.query c "QUERY Edge{tc()};" in
  if not (TS.equal expected_path.(writer_batches) (ts_of_tuples path_tuples))
  then Alcotest.failf "seed %d: final tc extent diverged over the wire" seed;
  Net.Client.close c;
  Net.stop listener;
  Server.shutdown srv;
  match !failures with
  | [] -> ()
  | msgs ->
    Alcotest.failf "%d isolation violations over the wire, first: %s"
      (List.length msgs)
      (List.hd (List.rev msgs))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dc_server"
    [
      ( "freeze discipline",
        [
          Alcotest.test_case "index cache freeze" `Quick test_index_cache_freeze;
          Alcotest.test_case "shared fallback" `Quick
            test_index_cache_shared_fallback;
          Alcotest.test_case "put prewarmed" `Quick test_index_cache_put;
          Alcotest.test_case "facts freeze" `Quick test_facts_freeze;
        ] );
      ( "versioned store",
        [
          Alcotest.test_case "snapshot immutability" `Quick
            test_snapshot_immutable;
          Alcotest.test_case "update_batch is one version" `Quick
            test_update_batch_one_version;
          Alcotest.test_case "rollback publishes nothing" `Quick
            test_commit_rollback_publishes_nothing;
        ] );
      ( "server",
        [
          Alcotest.test_case "writer serialization" `Quick
            test_submit_serializes;
          Alcotest.test_case "admission control" `Quick test_admission_control;
          Alcotest.test_case "per-session limits" `Quick test_session_limits;
          Alcotest.test_case "BEGIN/COMMIT pinning" `Quick test_session_pinning;
        ] );
      ( "surface",
        [
          Alcotest.test_case "SHOW SNAPSHOT golden" `Quick
            test_show_snapshot_golden;
        ] );
      ( "stress",
        [
          Alcotest.test_case "1 writer + 4 readers vs oracle" `Slow
            (test_stress 0xC0FFEE);
          Alcotest.test_case "1 writer + 4 socket readers vs oracle" `Slow
            (test_socket_stress 0xBEEF);
        ] );
    ]
