(* Tests for Dc_lang: lexer, parser, elaborator, and whole-program runs of
   the paper's listings through the surface syntax. *)

open Dc_relation
open Dc_core
open Dc_lang

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i =
    i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1))
  in
  nn = 0 || loop 0

(* ------------------------------------------------------------------ *)
(* Lexer *)

let toks src = List.map (fun l -> l.Token.tok) (Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.check Alcotest.bool "keywords and idents" true
    (toks "TYPE t = STRING;"
    = [ Token.Kw_type; Token.Ident "t"; Token.Eq; Token.Kw_string; Token.Semi;
        Token.Eof ]);
  Alcotest.check Alcotest.bool "operators" true
    (toks ":= <= >= < > = #"
    = [ Token.Assign; Token.Le; Token.Ge; Token.Lt; Token.Gt; Token.Eq;
        Token.Ne; Token.Eof ]);
  Alcotest.check Alcotest.bool "literals" true
    (toks {|42 3.5 "hi" x|}
    = [ Token.Int_lit 42; Token.Float_lit 3.5; Token.String_lit "hi";
        Token.Ident "x"; Token.Eof ])

let test_lexer_comments () =
  Alcotest.check Alcotest.bool "nested comments" true
    (toks "a (* x (* y *) z *) b" = [ Token.Ident "a"; Token.Ident "b"; Token.Eof ]);
  match toks "(* unterminated" with
  | _ -> Alcotest.fail "expected Lex_error"
  | exception Lexer.Lex_error _ -> ()

let test_lexer_strings () =
  Alcotest.check Alcotest.bool "escapes" true
    (toks {|"a\"b\nc"|} = [ Token.String_lit "a\"b\nc"; Token.Eof ]);
  match toks "\"open" with
  | _ -> Alcotest.fail "expected Lex_error"
  | exception Lexer.Lex_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_range () =
  let r = Parser.parse_range "Infront[hidden_by(\"table\")]{ahead(Ontop)}" in
  match r with
  | Surface.R_construct
      (Surface.R_select (Surface.R_name "Infront", "hidden_by", [ _ ]), "ahead", [ _ ])
    ->
    ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_comprehension () =
  let r =
    Parser.parse_range
      "{<f.front, b.back> OF EACH f IN Rel, EACH b IN Rel: f.back = b.front}"
  in
  match r with
  | Surface.R_comp [ { b_target = [ _; _ ]; b_binders = [ _; _ ]; _ } ] -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_multibranch () =
  let r =
    Parser.parse_range
      "{EACH r IN Rel: TRUE, <f.front, b.back> OF EACH f IN Rel, EACH b IN \
       Rel: f.back = b.front}"
  in
  match r with
  | Surface.R_comp [ b1; b2 ] ->
    Alcotest.check Alcotest.int "branch 1 binders" 1 (List.length b1.b_binders);
    Alcotest.check Alcotest.int "branch 2 binders" 2 (List.length b2.b_binders)
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_quantifiers () =
  (* multi-variable quantifier (SOME r1, r2 IN Objects) desugars to nesting *)
  let p =
    Parser.parse
      {|SELECTOR refint FOR Rel: infrontrel;
        BEGIN EACH r IN Rel:
          SOME r1, r2 IN Objects (r.front = r1.part AND r.back = r2.part)
        END refint;|}
  in
  match p with
  | [ Surface.D_selector { s_pred = Surface.F_some (_, _, Surface.F_some _); _ } ]
    ->
    ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_errors () =
  let expect_error src =
    match Parser.parse src with
    | _ -> Alcotest.failf "expected Parse_error for %s" src
    | exception Parser.Parse_error _ -> ()
  in
  expect_error "TYPE t STRING;";
  expect_error "QUERY ;";
  expect_error
    "CONSTRUCTOR c FOR Rel: t (): t2; BEGIN EACH r IN Rel: TRUE END wrong;";
  expect_error "VAR x y;"

(* ------------------------------------------------------------------ *)
(* Elaboration and whole-program runs *)

let run src = snd (Elaborate.run_string src)

let test_run_transitive_closure () =
  let out =
    run
      {|TYPE node = STRING;
        TYPE edgerel = RELATION src, dst OF RECORD src, dst: node END;
        VAR Edge: edgerel;
        CONSTRUCTOR tc FOR Rel: edgerel (): edgerel;
        BEGIN EACH r IN Rel: TRUE,
              <f.src, b.dst> OF EACH f IN Rel, EACH b IN Rel{tc}:
                f.dst = b.src
        END tc;
        INSERT Edge VALUES ("a", "b"), ("b", "c"), ("c", "d");
        QUERY Edge{tc};|}
  in
  Alcotest.check Alcotest.bool "derived pair present" true
    (contains out {|"a"   | "d"|} || contains out {|"a" | "d"|});
  Alcotest.check Alcotest.bool "six tuples" true (contains out "(6 tuples)")

let test_run_key_constraint () =
  let src =
    {|TYPE t = RELATION id OF RECORD id: INTEGER; name: STRING END;
      VAR R: t;
      INSERT R VALUES (1, "a"), (1, "b");|}
  in
  match run src with
  | _ -> Alcotest.fail "expected Key_violation"
  | exception Relation.Key_violation _ -> ()

let test_run_selector_assignment () =
  let out =
    run
      {|TYPE e = RELATION src, dst OF RECORD src, dst: STRING END;
        VAR Edge: e;
        VAR Loops: e;
        SELECTOR no_loop FOR Rel: e;
        BEGIN EACH r IN Rel: r.src # r.dst END no_loop;
        INSERT Loops VALUES ("a", "b");
        Edge[no_loop] := Loops;
        QUERY Edge;|}
  in
  Alcotest.check Alcotest.bool "assignment went through" true
    (contains out "(1 tuple)")

let test_run_selector_assignment_rejected () =
  let src =
    {|TYPE e = RELATION src, dst OF RECORD src, dst: STRING END;
      VAR Edge: e;
      VAR Loops: e;
      SELECTOR no_loop FOR Rel: e;
      BEGIN EACH r IN Rel: r.src # r.dst END no_loop;
      INSERT Loops VALUES ("a", "a");
      Edge[no_loop] := Loops;|}
  in
  match run src with
  | _ -> Alcotest.fail "expected Selector_violation"
  | exception Selector.Selector_violation _ -> ()

let test_run_positivity_rejected () =
  let src =
    {|TYPE t = RELATION x OF RECORD x: STRING END;
      VAR R: t;
      CONSTRUCTOR nonsense FOR Rel: t (): t;
      BEGIN EACH r IN Rel: NOT (r IN Rel{nonsense}) END nonsense;|}
  in
  match run src with
  | _ -> Alcotest.fail "expected Database.Error"
  | exception Database.Error msg ->
    Alcotest.check Alcotest.bool "positivity message" true
      (contains msg "NOT/ALL")

let test_run_mutual_recursion () =
  let candidates =
    [
      "../examples/cad_scene.dbpl"; "examples/cad_scene.dbpl";
      "../../examples/cad_scene.dbpl"; "../../../examples/cad_scene.dbpl";
      "/root/repo/examples/cad_scene.dbpl";
    ]
  in
  let path =
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.fail "cad_scene.dbpl not found"
  in
  let src = In_channel.with_open_text path In_channel.input_all in
  let out = run src in
  Alcotest.check Alcotest.bool "ahead results" true (contains out "(11 tuples)");
  Alcotest.check Alcotest.bool "above results" true (contains out "(9 tuples)")

let test_run_explain () =
  let out =
    run
      {|TYPE e = RELATION src, dst OF RECORD src, dst: STRING END;
        VAR Edge: e;
        CONSTRUCTOR tc FOR Rel: e (): e;
        BEGIN EACH r IN Rel: TRUE,
              <f.src, b.dst> OF EACH f IN Rel, EACH b IN Rel{tc}: f.dst = b.src
        END tc;
        INSERT Edge VALUES ("a", "b");
        EXPLAIN {EACH r IN Edge{tc}: r.src = "a"};|}
  in
  Alcotest.check Alcotest.bool "chose the capture rule" true
    (contains out "magic");
  Alcotest.check Alcotest.bool "prints the quant graph" true
    (contains out "quant graph")

let test_run_explain_analyze_and_metrics () =
  (* both directives sticky-enable collection: restore the configured
     state for the rest of this binary *)
  let saved = Dc_obs.Obs.on () in
  Fun.protect ~finally:(fun () -> Dc_obs.Obs.set_enabled saved) @@ fun () ->
  let out =
    run
      {|TYPE e = RELATION src, dst OF RECORD src, dst: STRING END;
        VAR Edge: e;
        CONSTRUCTOR tc FOR Rel: e (): e;
        BEGIN EACH r IN Rel: TRUE,
              <f.src, b.dst> OF EACH f IN Rel, EACH b IN Rel{tc}: f.dst = b.src
        END tc;
        INSERT Edge VALUES ("a", "b"), ("b", "c"), ("c", "d");
        EXPLAIN ANALYZE Edge{tc};
        SHOW METRICS;|}
  in
  Alcotest.check Alcotest.bool "per-operator timings" true
    (contains out "time=");
  Alcotest.check Alcotest.bool "per-round fixpoint stats" true
    (contains out "fixpoint rounds:");
  Alcotest.check Alcotest.bool "round deltas shown" true
    (contains out "delta=");
  Alcotest.check Alcotest.bool "registry dumped as Prometheus text" true
    (contains out "# TYPE dc_fixpoint_rounds_total counter");
  Alcotest.check Alcotest.bool "trace totals folded into the registry" true
    (contains out "dc_operator_rows_total")

let test_run_arith_and_delete () =
  let out =
    run
      {|TYPE t = RELATION a, b OF RECORD a, b: INTEGER END;
        VAR R: t;
        INSERT R VALUES (1, 2), (3, 4);
        DELETE R VALUES (3, 4);
        QUERY {<r.a, r.b * 10> OF EACH r IN R: TRUE};|}
  in
  Alcotest.check Alcotest.bool "computed column" true (contains out "20");
  Alcotest.check Alcotest.bool "deletion applied" true (contains out "(1 tuple)")

(* ------------------------------------------------------------------ *)
(* Property: pretty-printing a calculus range and re-parsing it through
   the surface pipeline evaluates to the same relation (pp/parser
   agreement on the shared concrete syntax). *)

let roundtrip_db () =
  let db = Dc_core.Database.create () in
  let schema =
    Dc_relation.Schema.make [ ("src", Dc_relation.Value.TStr); ("dst", Dc_relation.Value.TStr) ]
  in
  Dc_core.Database.declare db "Edge" schema;
  Dc_core.Database.set db "Edge"
    (Dc_relation.Relation.of_pairs schema
       (List.map
          (fun (a, b) -> (Dc_relation.Value.Str a, Dc_relation.Value.Str b))
          [ ("a", "b"); ("b", "c"); ("c", "d"); ("b", "d") ]));
  Dc_core.Database.define_constructor db
    (Dc_core.Constructor.transitive_closure ());
  db

let arb_query =
  let open QCheck in
  let open Dc_calculus.Ast in
  let base_range = Gen.oneofl [ Rel "Edge"; Construct (Rel "Edge", "tc", []) ] in
  let const = Gen.map (fun c -> str (String.make 1 c)) (Gen.char_range 'a' 'd') in
  let term v = Gen.oneof [ Gen.oneofl [ field v "src"; field v "dst" ]; const ] in
  let cmp v =
    Gen.map3
      (fun op a b -> Cmp (op, a, b))
      (Gen.oneofl [ Eq; Ne; Lt; Le; Gt; Ge ])
      (term v) (term v)
  in
  let rec formula v n =
    if n = 0 then cmp v
    else
      Gen.oneof
        [
          cmp v;
          Gen.map (fun f -> Not f) (formula v (n - 1));
          Gen.map2 (fun a b -> And (a, b)) (formula v (n - 1)) (formula v (n - 1));
          Gen.map2 (fun a b -> Or (a, b)) (formula v (n - 1)) (formula v (n - 1));
          Gen.map2
            (fun r f -> Some_in ("q" ^ string_of_int n, r, f))
            base_range
            (formula ("q" ^ string_of_int n) (n - 1));
          Gen.map2
            (fun r f -> All_in ("q" ^ string_of_int n, r, f))
            base_range
            (formula ("q" ^ string_of_int n) (n - 1));
          Gen.map2 (fun a r -> Member ([ a; a ], r)) (term v) base_range;
        ]
  in
  let query =
    Gen.sized (fun n ->
        let n = min n 4 in
        Gen.oneof
          [
            base_range;
            Gen.map2
              (fun r f -> Comp [ branch [ ("v", r) ] ~where:f ])
              base_range (formula "v" n);
            Gen.map3
              (fun r1 r2 f ->
                Comp
                  [
                    branch
                      [ ("v", r1); ("w", r2) ]
                      ~target:[ field "v" "src"; field "w" "dst" ]
                      ~where:(conj (eq (field "v" "dst") (field "w" "src")) f);
                  ])
              base_range base_range (formula "w" (min n 2));
          ])
  in
  make query ~print:range_to_string

let prop_pp_parse_roundtrip =
  QCheck.Test.make ~name:"pp |> parse |> eval agrees" ~count:120 arb_query
    (fun q ->
      let db = roundtrip_db () in
      let direct = Dc_core.Database.query db q in
      let text = Dc_calculus.Ast.range_to_string q in
      let reparsed =
        Elaborate.lower_query
          (Elaborate.create db)
          (Parser.parse_range text)
      in
      Dc_relation.Relation.equal direct (Dc_core.Database.query db reparsed))

let test_parse_arith_precedence () =
  (* a + b * c parses as a + (b * c) *)
  let p =
    Parser.parse
      {|TYPE t = RELATION a OF RECORD a: INTEGER END;
        VAR R: t;
        QUERY {<r.a + r.a * 2> OF EACH r IN R: TRUE};|}
  in
  match List.nth p 2 with
  | Surface.D_query
      (Surface.R_comp
        [ { b_target = [ Surface.T_binop (Dc_calculus.Ast.Add, _, Surface.T_binop (Dc_calculus.Ast.Mul, _, _)) ]; _ } ])
    ->
    ()
  | _ -> Alcotest.fail "unexpected precedence parse"

let test_subtraction_left_assoc () =
  let out =
    run
      {|TYPE t = RELATION a OF RECORD a: INTEGER END;
        VAR R: t;
        INSERT R VALUES (10);
        QUERY {<r.a - 3 - 2> OF EACH r IN R: TRUE};|}
  in
  Alcotest.check Alcotest.bool "10 - 3 - 2 = 5" true (contains out "5")

let test_selector_with_relation_param () =
  (* the paper's refint selector: a relation-typed parameter *)
  let out =
    run
      {|TYPE part = STRING;
        TYPE objrel = RELATION p OF RECORD p: part END;
        TYPE erel = RELATION f, b OF RECORD f, b: part END;
        VAR Objects: objrel;
        VAR Infront: erel;
        VAR Staging: erel;
        SELECTOR refint (Obj: objrel) FOR Rel: erel;
        BEGIN EACH r IN Rel:
          SOME r1, r2 IN Obj (r.f = r1.p AND r.b = r2.p)
        END refint;
        INSERT Objects VALUES ("table"), ("chair");
        INSERT Staging VALUES ("table", "chair");
        Infront[refint(Objects)] := Staging;
        QUERY Infront;|}
  in
  Alcotest.check Alcotest.bool "guarded assignment with relation arg" true
    (contains out "(1 tuple)")

(* ------------------------------------------------------------------ *)
(* RANGE subtypes (paper §2.1: partidtype IS RANGE 1..100) *)

let with_temp_dir f =
  let dir = Filename.temp_file "dc_store" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)


let test_range_subtype_accepts () =
  let out =
    run
      {|TYPE partidtype = RANGE 1..100;
        TYPE parts = RELATION id OF RECORD id: partidtype; name: STRING END;
        VAR Parts: parts;
        INSERT Parts VALUES (1, "axle"), (100, "frame");
        QUERY Parts;|}
  in
  Alcotest.check Alcotest.bool "in-range values accepted" true
    (contains out "(2 tuples)")

let test_range_subtype_rejects () =
  (* the generated §2.1 check: IF (1<=ix) AND (ix<=100) THEN ... ELSE
     <exception> *)
  let src =
    {|TYPE partidtype = RANGE 1..100;
      TYPE parts = RELATION id OF RECORD id: partidtype END;
      VAR Parts: parts;
      INSERT Parts VALUES (101);|}
  in
  match run src with
  | _ -> Alcotest.fail "expected Type_mismatch (domain violation)"
  | exception Relation.Type_mismatch msg ->
    Alcotest.check Alcotest.bool "names the refinement" true
      (contains msg "refinement")

let test_range_subtype_on_assignment () =
  (* computed values are re-checked when assigned at the refined type *)
  let src =
    {|TYPE small = RANGE 0..5;
      TYPE t = RELATION a, b OF RECORD a, b: small END;
      VAR R: t;
      INSERT R VALUES (2, 3);
      R := {<r.a, r.b * 2> OF EACH r IN R: TRUE};
      R := {<r.a, r.b * 2> OF EACH r IN R: TRUE};|}
  in
  match run src with
  | _ -> Alcotest.fail "expected Type_mismatch on the second doubling"
  | exception Relation.Type_mismatch _ -> ()

let test_range_inline_field () =
  let out =
    run
      {|TYPE t = RELATION a OF RECORD a: RANGE -5..5 END;
        VAR R: t;
        INSERT R VALUES (-5), (0), (5);
        QUERY R;|}
  in
  Alcotest.check Alcotest.bool "negative bounds parse" true
    (contains out "(3 tuples)")

let test_range_storage_roundtrip () =
  let db, _ =
    Elaborate.run_string
      {|TYPE partid = RANGE 1..100;
        TYPE parts = RELATION id OF RECORD id: partid; name: STRING END;
        VAR Parts: parts;
        INSERT Parts VALUES (7, "nut");|}
  in
  with_temp_dir (fun dir ->
      Storage.save db dir;
      let db2 = Storage.load dir in
      (* the refinement survived: inserting out of range still fails *)
      match
        Database.insert db2 "Parts"
          (Tuple.make2 (Value.Int 500) (Value.Str "bad"))
      with
      | _ -> Alcotest.fail "refinement lost in the catalog roundtrip"
      | exception Relation.Type_mismatch _ -> ())

(* ------------------------------------------------------------------ *)
(* Persistence: save -> load roundtrip re-validates everything *)

let test_storage_roundtrip () =
  let db, _ =
    Elaborate.run_string
      {|TYPE part = STRING;
        TYPE infrontrel = RELATION front, back OF RECORD front, back: part END;
        TYPE ontoprel = RELATION top, base OF RECORD top, base: part END;
        TYPE aheadrel = RELATION head, tail OF RECORD head, tail: part END;
        TYPE aboverel = RELATION high, low OF RECORD high, low: part END;
        VAR Infront: infrontrel;
        VAR Ontop: ontoprel;
        SELECTOR hidden_by (Obj: part) FOR Rel: infrontrel;
        BEGIN EACH r IN Rel: r.front = Obj END hidden_by;
        CONSTRUCTOR ahead FOR Rel: infrontrel (Ontop: ontoprel): aheadrel;
        BEGIN EACH r IN Rel: TRUE,
              <r.front, ah.tail> OF EACH r IN Rel, EACH ah IN Rel{ahead(Ontop)}:
                r.back = ah.head,
              <r.front, ab.low> OF EACH r IN Rel, EACH ab IN Ontop{above(Rel)}:
                r.back = ab.high
        END ahead;
        CONSTRUCTOR above FOR Rel: ontoprel (Infront: infrontrel): aboverel;
        BEGIN EACH r IN Rel: TRUE,
              <r.top, ab.low> OF EACH r IN Rel, EACH ab IN Rel{above(Infront)}:
                r.base = ab.high,
              <r.top, ah.tail> OF EACH r IN Rel, EACH ah IN Infront{ahead(Rel)}:
                r.base = ah.head
        END above;
        INSERT Infront VALUES ("lamp", "vase"), ("table", "chair");
        INSERT Ontop VALUES ("vase", "table");|}
  in
  let q =
    Dc_calculus.Ast.(
      Construct (Rel "Infront", "ahead", [ Arg_range (Rel "Ontop") ]))
  in
  let before = Database.query db q in
  with_temp_dir (fun dir ->
      Storage.save db dir;
      let db2 = Storage.load dir in
      (* relations, definitions, and semantics all survive *)
      Alcotest.check
        (Alcotest.testable Relation.pp Relation.equal)
        "query agrees after reload" before (Database.query db2 q);
      Alcotest.check
        (Alcotest.testable Relation.pp Relation.equal)
        "data survives"
        (Database.get db "Infront")
        (Database.get db2 "Infront");
      Alcotest.check Alcotest.bool "selector survives" true
        (Database.selector db2 "hidden_by" <> None))

let test_storage_selector_with_rel_param () =
  (* the refint pattern: a selector with a relation-typed parameter must
     survive the catalog roundtrip *)
  let db, _ =
    Elaborate.run_string
      {|TYPE part = STRING;
        TYPE objrel = RELATION p OF RECORD p: part END;
        TYPE erel = RELATION f, b OF RECORD f, b: part END;
        VAR Objects: objrel;
        VAR Infront: erel;
        SELECTOR refint (Obj: objrel) FOR Rel: erel;
        BEGIN EACH r IN Rel:
          SOME r1, r2 IN Obj (r.f = r1.p AND r.b = r2.p)
        END refint;
        INSERT Objects VALUES ("table"), ("chair");
        INSERT Infront VALUES ("table", "chair");|}
  in
  with_temp_dir (fun dir ->
      Storage.save db dir;
      let db2 = Storage.load dir in
      let selected =
        Database.query db2
          Dc_calculus.Ast.(
            Select (Rel "Infront", "refint", [ Arg_range (Rel "Objects") ]))
      in
      Alcotest.check Alcotest.int "selector with relation parameter works" 1
        (Relation.cardinal selected))

let test_storage_rejects_corrupt () =
  let db, _ =
    Elaborate.run_string
      {|TYPE t = RELATION id OF RECORD id: INTEGER; v: STRING END;
        VAR R: t;
        INSERT R VALUES (1, "x");|}
  in
  with_temp_dir (fun dir ->
      Storage.save db dir;
      (* corrupt the CSV with a key collision: reload must re-validate *)
      Out_channel.with_open_text (Filename.concat dir "R.csv") (fun oc ->
          Out_channel.output_string oc "id,v\n1,x\n1,y\n");
      match Storage.load dir with
      | _ -> Alcotest.fail "expected Key_violation on reload"
      | exception Relation.Key_violation _ -> ())

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dc_lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "strings" `Quick test_lexer_strings;
        ] );
      ( "parser",
        [
          Alcotest.test_case "range applications" `Quick test_parse_range;
          Alcotest.test_case "comprehension" `Quick test_parse_comprehension;
          Alcotest.test_case "multi-branch" `Quick test_parse_multibranch;
          Alcotest.test_case "quantifiers" `Quick test_parse_quantifiers;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "programs",
        [
          Alcotest.test_case "transitive closure" `Quick
            test_run_transitive_closure;
          Alcotest.test_case "key constraint" `Quick test_run_key_constraint;
          Alcotest.test_case "selector assignment ok" `Quick
            test_run_selector_assignment;
          Alcotest.test_case "selector assignment rejected" `Quick
            test_run_selector_assignment_rejected;
          Alcotest.test_case "positivity rejected" `Quick
            test_run_positivity_rejected;
          Alcotest.test_case "cad scene (mutual recursion)" `Quick
            test_run_mutual_recursion;
          Alcotest.test_case "explain" `Quick test_run_explain;
          Alcotest.test_case "explain analyze + show metrics" `Quick
            test_run_explain_analyze_and_metrics;
          Alcotest.test_case "arith + delete" `Quick test_run_arith_and_delete;
          Alcotest.test_case "arith precedence" `Quick
            test_parse_arith_precedence;
          Alcotest.test_case "subtraction left-assoc" `Quick
            test_subtraction_left_assoc;
          Alcotest.test_case "selector with relation param" `Quick
            test_selector_with_relation_param;
        ] );
      ( "range-subtypes (2.1)",
        [
          Alcotest.test_case "accepts in-range" `Quick
            test_range_subtype_accepts;
          Alcotest.test_case "rejects out-of-range" `Quick
            test_range_subtype_rejects;
          Alcotest.test_case "re-checked on assignment" `Quick
            test_range_subtype_on_assignment;
          Alcotest.test_case "inline field, negative bounds" `Quick
            test_range_inline_field;
          Alcotest.test_case "survives the catalog" `Quick
            test_range_storage_roundtrip;
        ] );
      ( "storage",
        [
          Alcotest.test_case "save/load roundtrip" `Quick
            test_storage_roundtrip;
          Alcotest.test_case "selector with relation param" `Quick
            test_storage_selector_with_rel_param;
          Alcotest.test_case "reload re-validates" `Quick
            test_storage_rejects_corrupt;
        ] );
      ("properties", qcheck [ prop_pp_parse_roundtrip ]);
    ]
